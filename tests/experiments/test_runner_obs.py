"""The experiment runner's observability flags export valid artifacts."""

import json

import pytest

from repro.experiments.runner import main
from repro.obs import MANIFEST_SCHEMA, get_registry, get_trace, inputs_hash


@pytest.fixture
def run_table1(tmp_path, capsys):
    def run(*extra_args):
        metrics = tmp_path / "metrics.prom"
        trace = tmp_path / "trace.jsonl"
        code = main(
            ["table1", "--metrics-out", str(metrics), "--trace-out", str(trace)]
            + list(extra_args)
        )
        capsys.readouterr()
        assert code == 0
        return metrics, trace, tmp_path / "run_manifest.json"

    return run


class TestObservedRun:
    def test_writes_prometheus_snapshot(self, run_table1):
        metrics, _, _ = run_table1()
        text = metrics.read_text()
        assert "# TYPE erlang_inversion_calls_total counter" in text
        assert "# TYPE model_solve_seconds histogram" in text
        assert 'model_solves_total{load_model="paper"}' in text

    def test_trace_has_span_per_experiment(self, run_table1):
        _, trace, _ = run_table1()
        docs = [json.loads(line) for line in trace.read_text().strip().splitlines()]
        begins = [d for d in docs if d["kind"] == "span_begin"]
        ends = [d for d in docs if d["kind"] == "span_end"]
        assert {d["experiment"] for d in begins} == {"table1"}
        assert len(begins) == len(ends) == 1
        assert ends[0]["duration_s"] > 0.0
        assert ends[0]["rows"] > 0

    def test_manifest_written_next_to_outputs(self, run_table1):
        _, _, manifest_path = run_table1()
        manifest = json.loads(manifest_path.read_text())
        assert manifest["schema"] == MANIFEST_SCHEMA
        assert manifest["inputs"]["experiments"] == ["table1"]
        assert manifest["inputs_hash"] == inputs_hash(manifest["inputs"])
        assert manifest["seed"] == 2009
        assert manifest["wall_time_s"] > 0.0
        assert "erlang_inversion_calls_total" in manifest["metrics"]
        assert manifest["trace"]["events"] >= 2

    def test_manifest_prefers_output_dir(self, tmp_path, capsys):
        out = tmp_path / "artifacts"
        assert main(["table1", "--seed", "3", "--output", str(out)]) == 0
        capsys.readouterr()
        manifest = json.loads((out / "run_manifest.json").read_text())
        assert manifest["seed"] == 3
        assert (out / "table1.csv").exists()

    def test_globals_restored_after_run(self, run_table1):
        run_table1()
        assert not get_registry().enabled
        assert not get_trace().enabled


class TestUnobservedRun:
    def test_plain_run_writes_nothing(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        assert main(["table1"]) == 0
        capsys.readouterr()
        assert list(tmp_path.iterdir()) == []


class TestProfileOut:
    def test_writes_hotspot_report_and_manifest(self, tmp_path, capsys):
        profile = tmp_path / "profile.json"
        assert main(["table1", "--profile-out", str(profile)]) == 0
        capsys.readouterr()
        doc = json.loads(profile.read_text())
        assert doc["schema"] == "repro.profile/v1"
        assert doc["spans"] == [{"name": "experiment", "experiment": "table1"}]
        assert doc["hotspots"]
        # The profile file's directory doubles as the manifest fallback.
        assert (tmp_path / "run_manifest.json").exists()

    def test_unwritable_profile_path(self, tmp_path, capsys):
        blocker = tmp_path / "blocker"
        blocker.write_text("")
        assert main(["table1", "--profile-out", str(blocker / "x" / "p.json")]) == 1
        assert "cannot write observability output" in capsys.readouterr().err


class TestProgress:
    def test_progress_emits_summary_line(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        assert main(["table1", "--progress"]) == 0
        err = capsys.readouterr().err
        assert "[progress] done: 1/1 experiments" in err
        # --progress alone enables observability but writes no files.
        assert list(tmp_path.iterdir()) == []

    def test_progress_with_manifest(self, run_table1, capsys):
        metrics, _, manifest_path = run_table1("--progress")
        assert metrics.exists()
        assert manifest_path.exists()
