"""The experiment runner's observability flags export valid artifacts."""

import json

import pytest

from repro.experiments.runner import main
from repro.obs import (
    MANIFEST_SCHEMA,
    get_registry,
    get_trace,
    inputs_hash,
    load_fidelity_artifact,
)
from repro.obs import fidelity as fidelity_mod


@pytest.fixture
def run_table1(tmp_path, capsys):
    def run(*extra_args):
        metrics = tmp_path / "metrics.prom"
        trace = tmp_path / "trace.jsonl"
        code = main(
            ["table1", "--metrics-out", str(metrics), "--trace-out", str(trace)]
            + list(extra_args)
        )
        capsys.readouterr()
        assert code == 0
        return metrics, trace, tmp_path / "run_manifest.json"

    return run


class TestObservedRun:
    def test_writes_prometheus_snapshot(self, run_table1):
        metrics, _, _ = run_table1()
        text = metrics.read_text()
        assert "# TYPE erlang_inversion_calls_total counter" in text
        assert "# TYPE model_solve_seconds histogram" in text
        assert 'model_solves_total{load_model="paper"}' in text

    def test_trace_has_span_per_experiment(self, run_table1):
        _, trace, _ = run_table1()
        docs = [json.loads(line) for line in trace.read_text().strip().splitlines()]
        begins = [d for d in docs if d["kind"] == "span_begin"]
        ends = [d for d in docs if d["kind"] == "span_end"]
        assert {d["experiment"] for d in begins} == {"table1"}
        assert len(begins) == len(ends) == 1
        assert ends[0]["duration_s"] > 0.0
        assert ends[0]["rows"] > 0

    def test_manifest_written_next_to_outputs(self, run_table1):
        _, _, manifest_path = run_table1()
        manifest = json.loads(manifest_path.read_text())
        assert manifest["schema"] == MANIFEST_SCHEMA
        assert manifest["inputs"]["experiments"] == ["table1"]
        assert manifest["inputs_hash"] == inputs_hash(manifest["inputs"])
        assert manifest["seed"] == 2009
        assert manifest["wall_time_s"] > 0.0
        assert "erlang_inversion_calls_total" in manifest["metrics"]
        assert manifest["trace"]["events"] >= 2

    def test_manifest_prefers_output_dir(self, tmp_path, capsys):
        out = tmp_path / "artifacts"
        assert main(["table1", "--seed", "3", "--output", str(out)]) == 0
        capsys.readouterr()
        manifest = json.loads((out / "run_manifest.json").read_text())
        assert manifest["seed"] == 3
        assert (out / "table1.csv").exists()

    def test_globals_restored_after_run(self, run_table1):
        run_table1()
        assert not get_registry().enabled
        assert not get_trace().enabled

    def test_manifest_records_audit_assumptions_outside_inputs_hash(
        self, tmp_path, capsys
    ):
        out = tmp_path / "artifacts"
        assert (
            main(
                ["table1", "--output", str(out),
                 "--price-usd-per-kwh", "0.25"]
            )
            == 0
        )
        capsys.readouterr()
        manifest = json.loads((out / "run_manifest.json").read_text())
        assert manifest["audit"]["price_usd_per_kwh"] == 0.25
        assert manifest["audit"]["carbon_g_per_kwh"] == 400.0
        # provenance, not identity: like 'parallel', the assumptions sit
        # outside the hashed inputs
        assert "audit" not in manifest["inputs"]
        assert manifest["inputs_hash"] == inputs_hash(manifest["inputs"])

    def test_invalid_audit_assumption_is_usage_error(self, tmp_path, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["table1", "--output", str(tmp_path),
                  "--price-usd-per-kwh", "-1"])
        assert exc.value.code == 2
        assert "non-negative" in capsys.readouterr().err


class TestFleetOut:
    def test_fleet_out_writes_dashboard_and_artifact(self, tmp_path, capsys):
        out = tmp_path / "artifacts"
        fleet = out / "fleet.html"
        code = main(
            ["fig11", "fig12", "fig13", "table1",
             "--output", str(out), "--fleet-out", str(fleet)]
        )
        err = capsys.readouterr().err
        assert code == 0
        assert "fleet dashboard:" in err and "fleet artifact:" in err
        html = fleet.read_text()
        assert "Executive summary" in html
        assert "<script" not in html
        assert "http" + "://" not in html
        (fleet_json,) = out.glob("FLEET_*.json")
        doc = json.loads(fleet_json.read_text())
        assert doc["schema"] == "repro.fleet/v1"
        # live fig12 run supplies the measured fleets
        assert {"dedicated", "consolidated", "projected"} <= set(
            doc["scenarios"]
        )
        assert doc["decision"]["recommendation"] == "consolidated"

    def test_fleet_out_respects_assumption_flags(self, tmp_path, capsys):
        out = tmp_path / "artifacts"
        code = main(
            ["fig12", "--output", str(out),
             "--fleet-out", str(out / "fleet.html"),
             "--carbon-g-per-kwh", "100"]
        )
        capsys.readouterr()
        assert code == 0
        (fleet_json,) = out.glob("FLEET_*.json")
        doc = json.loads(fleet_json.read_text())
        assert doc["assumptions"]["carbon_g_per_kwh"] == 100.0


class TestUnobservedRun:
    def test_plain_run_writes_nothing(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        assert main(["table1"]) == 0
        capsys.readouterr()
        assert list(tmp_path.iterdir()) == []


class TestProfileOut:
    def test_writes_hotspot_report_and_manifest(self, tmp_path, capsys):
        profile = tmp_path / "profile.json"
        assert main(["table1", "--profile-out", str(profile)]) == 0
        capsys.readouterr()
        doc = json.loads(profile.read_text())
        assert doc["schema"] == "repro.profile/v1"
        assert doc["spans"] == [{"name": "experiment", "experiment": "table1"}]
        assert doc["hotspots"]
        # The profile file's directory doubles as the manifest fallback.
        assert (tmp_path / "run_manifest.json").exists()

    def test_unwritable_profile_path(self, tmp_path, capsys):
        blocker = tmp_path / "blocker"
        blocker.write_text("")
        assert main(["table1", "--profile-out", str(blocker / "x" / "p.json")]) == 1
        assert "cannot write observability output" in capsys.readouterr().err


class TestFidelity:
    def test_observed_run_writes_fidelity_artifact(self, tmp_path, capsys):
        out = tmp_path / "artifacts"
        assert main(["table1", "--output", str(out)]) == 0
        captured = capsys.readouterr()
        assert "fidelity: match" in captured.out
        artifacts = sorted(out.glob("FIDELITY_*.json"))
        assert len(artifacts) == 1
        doc = load_fidelity_artifact(artifacts[0])
        assert doc["overall"] == "match"
        assert doc["inputs"] == {"seed": 2009, "full": False}
        assert {v["experiment"] for v in doc["verdicts"]} == {"table1"}

    def test_rerun_appends_second_artifact(self, tmp_path, capsys):
        out = tmp_path / "artifacts"
        assert main(["table1", "--output", str(out)]) == 0
        assert main(["table1", "--output", str(out)]) == 0
        capsys.readouterr()
        assert len(list(out.glob("FIDELITY_*.json"))) == 2

    def test_scoreboard_printed_without_artifacts(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        assert main(["table1"]) == 0
        assert "fidelity: match" in capsys.readouterr().out
        assert list(tmp_path.iterdir()) == []  # unobserved: nothing written

    def test_fail_on_fidelity_gates_exit_code(self, tmp_path, capsys, monkeypatch):
        # Sneak an impossible expectation in so table1 grades as fail.
        monkeypatch.setitem(
            fidelity_mod._EXPECTATIONS,
            "table1",
            fidelity_mod.expectations_for("table1")
            + (fidelity_mod.Expectation("group1_N", -1),),
        )
        monkeypatch.chdir(tmp_path)
        assert main(["table1"]) == 0  # report-only by default
        assert main(["table1", "--fail-on-fidelity"]) == 1
        assert "fidelity gate failed" in capsys.readouterr().err


class TestReportOut:
    def test_report_fuses_all_sections(self, tmp_path, capsys):
        out = tmp_path / "artifacts"
        report = out / "report.html"
        code = main(
            [
                "table1",
                "--output",
                str(out),
                "--trace-out",
                str(out / "trace.jsonl"),
                "--report-out",
                str(report),
            ]
        )
        capsys.readouterr()
        assert code == 0
        html = report.read_text()
        assert "Fidelity scoreboard" in html and "badge-match" in html
        assert "repro.run-manifest/v1" in html  # manifest section
        assert "model_solves_total" in html  # metric snapshot
        assert "Span tree" in html  # live trace events
        assert "group1_matches_paper" in html  # experiment summaries
        assert "<script" not in html

    def test_report_out_alone_enables_observability(self, tmp_path, capsys):
        report = tmp_path / "sub" / "report.html"
        assert main(["table1", "--report-out", str(report)]) == 0
        capsys.readouterr()
        assert report.exists()
        # The report directory doubles as the manifest/fidelity fallback.
        assert (tmp_path / "sub" / "run_manifest.json").exists()
        assert list((tmp_path / "sub").glob("FIDELITY_*.json"))

    def test_unwritable_report_path(self, tmp_path, capsys):
        blocker = tmp_path / "blocker"
        blocker.write_text("")
        code = main(
            [
                "table1",
                "--output",
                str(tmp_path / "out"),
                "--report-out",
                str(blocker / "x" / "report.html"),
            ]
        )
        assert code == 1
        assert "cannot write observability output" in capsys.readouterr().err


class TestProgress:
    def test_progress_emits_summary_line(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        assert main(["table1", "--progress"]) == 0
        err = capsys.readouterr().err
        assert "[progress] done: 1/1 experiments" in err
        # --progress alone enables observability but writes no files.
        assert list(tmp_path.iterdir()) == []

    def test_progress_with_manifest(self, run_table1, capsys):
        metrics, _, manifest_path = run_table1("--progress")
        assert metrics.exists()
        assert manifest_path.exists()
