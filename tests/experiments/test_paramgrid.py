"""Columnar ParamGrid + block sweep engine: shapes, rows, determinism."""

import numpy as np
import pytest

from repro.experiments.base import ParamGrid
from repro.parallel import ParallelSweep, seed_for, sweep_grid
from repro.parallel.sweep import _run_grid_chunk


class TestParamGridConstruction:
    def test_numeric_columns_become_arrays(self):
        grid = ParamGrid({"rho": [1.0, 2.0, 3.0], "n": [1, 2, 3]})
        assert len(grid) == 3
        assert grid.names == ("rho", "n")
        assert grid.column("rho").dtype == np.float64
        assert grid.column("n").dtype.kind in "iu"

    def test_heterogeneous_columns_fall_back_to_object(self):
        grid = ParamGrid({"count": [None, 2, 3]})
        assert grid.column("count").dtype == object
        assert grid.row(0)["count"] is None
        assert grid.row(1)["count"] == 2

    def test_nested_sequences_stay_one_object_per_row(self):
        grid = ParamGrid({"sizes": [(1, 2), (3, 4, 5)], "tag": ["a", "b"]})
        assert len(grid) == 2
        assert grid.row(1)["sizes"] == (3, 4, 5)

    def test_rows_unwrap_numpy_scalars(self):
        row = ParamGrid({"rho": np.array([2.5]), "n": np.array([7])}).row(0)
        assert type(row["rho"]) is float
        assert type(row["n"]) is int

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError, match="length"):
            ParamGrid({"a": [1, 2], "b": [1, 2, 3]})

    def test_empty_spec_rejected(self):
        with pytest.raises(ValueError, match="at least one column"):
            ParamGrid({})

    def test_from_rows_round_trips(self):
        rows = [{"rho": 1.0, "b": 0.01}, {"rho": 2.0, "b": 0.001}]
        grid = ParamGrid.from_rows(rows)
        assert list(grid.rows()) == rows

    def test_from_product_is_c_ordered(self):
        grid = ParamGrid.from_product(rho=[1.0, 2.0], b=[0.1, 0.2, 0.3])
        assert len(grid) == 6
        assert grid.column("rho").tolist() == [1.0, 1.0, 1.0, 2.0, 2.0, 2.0]
        assert grid.column("b").tolist() == [0.1, 0.2, 0.3] * 2


class TestBlocks:
    def test_blocks_partition_without_overlap(self):
        grid = ParamGrid({"x": list(range(10))})
        blocks = list(grid.blocks(4))
        assert [start for start, _ in blocks] == [0, 4, 8]
        assert [len(b) for _, b in blocks] == [4, 4, 2]
        stitched = [row["x"] for _, b in blocks for row in b.rows()]
        assert stitched == list(range(10))

    def test_slice_views_do_not_copy_values(self):
        grid = ParamGrid({"x": [10, 20, 30, 40]})
        block = grid.slice(1, 3)
        assert [r["x"] for r in block.rows()] == [20, 30]

    def test_invalid_chunk_size(self):
        with pytest.raises(ValueError, match="positive"):
            list(ParamGrid({"x": [1]}).blocks(0))


def _square_block(block):
    """Module-level (picklable) block task: x -> x*x."""
    return [row["x"] * row["x"] for row in block.rows()]


def _seeded_block(block, *, seeds):
    """Module-level block task echoing its per-row seeds."""
    return [(row["x"], seed) for row, seed in zip(block.rows(), seeds)]


def _short_block(block):
    return [0]  # wrong length on purpose


class TestSweepGrid:
    def test_results_in_grid_order(self):
        grid = ParamGrid({"x": list(range(23))})
        assert sweep_grid(_square_block, grid) == [x * x for x in range(23)]

    def test_jobs_and_chunking_are_invisible(self):
        grid = ParamGrid({"x": list(range(40))})
        serial = sweep_grid(_square_block, grid, jobs=1)
        for jobs in (2, 4):
            for chunk_size in (1, 3, 40):
                assert (
                    sweep_grid(
                        _square_block, grid, jobs=jobs, chunk_size=chunk_size
                    )
                    == serial
                )

    def test_seeds_are_grid_index_derived(self):
        grid = ParamGrid({"x": list(range(9))})
        rows = sweep_grid(_seeded_block, grid, base_seed=2009, chunk_size=4)
        assert [seed for _, seed in rows] == [
            seed_for(2009, i) for i in range(9)
        ]
        # Identical seeds at any chunking: block boundaries cannot leak in.
        assert rows == sweep_grid(
            _seeded_block, grid, base_seed=2009, chunk_size=2
        )

    def test_wrong_result_length_is_an_error(self):
        grid = ParamGrid({"x": [1, 2, 3]})
        with pytest.raises(ValueError, match="3-row block"):
            _run_grid_chunk(_short_block, None, 0, grid)

    def test_empty_grid_handled_by_stats(self):
        sweep = ParallelSweep(_square_block)
        grid = ParamGrid({"x": [5]})
        assert sweep.run_grid(grid.slice(0, 0)) == []
        assert sweep.stats.tasks == 0

    def test_stats_count_rows_not_blocks(self):
        sweep = ParallelSweep(_square_block, chunk_size=4)
        grid = ParamGrid({"x": list(range(10))})
        sweep.run_grid(grid)
        assert sweep.stats.tasks == 10
        assert sweep.stats.chunks == 3
