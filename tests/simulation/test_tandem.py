"""Unit + validation tests for the multi-tier tandem simulation."""

import numpy as np
import pytest

from repro.queueing.mmn import mmn_delay_metrics
from repro.simulation.tandem import TierSpec, simulate_tandem


def two_tiers(a_web=1.0, a_db=1.0, db_visit=1.0):
    # Web tier: 2 servers at mu=10; DB tier: 4 servers at mu=2.
    return [
        TierSpec("web", 2, 1.0 / 10.0, impact_factor=a_web),
        TierSpec("db", 4, 1.0 / 2.0, impact_factor=a_db, visit_ratio=db_visit),
    ]


class TestTierSpec:
    def test_impact_factor_scales_service(self):
        t = TierSpec("db", 1, 1.0, impact_factor=0.5)
        assert t.service.mean == pytest.approx(2.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            TierSpec("", 1, 1.0)
        with pytest.raises(ValueError):
            TierSpec("x", 0, 1.0)
        with pytest.raises(ValueError):
            TierSpec("x", 1, 1.0, impact_factor=0.0)
        with pytest.raises(ValueError):
            TierSpec("x", 1, 1.0, visit_ratio=0.0)


class TestSimulation:
    def test_all_requests_complete(self, rng):
        result = simulate_tandem(3.0, two_tiers(), 2000.0, rng)
        assert result.completed == pytest.approx(3.0 * 2000.0, rel=0.1)
        assert result.tier("web").visits == result.tier("db").visits

    def test_jackson_tandem_matches_product_form(self, rng):
        # Exponential everywhere: end-to-end mean response equals the sum
        # of per-tier M/M/n response times (Burke's theorem).
        lam = 3.0
        result = simulate_tandem(lam, two_tiers(), 30_000.0, rng)
        expected = (
            mmn_delay_metrics(lam, 10.0, 2).mean_response_time
            + mmn_delay_metrics(lam, 2.0, 4).mean_response_time
        )
        assert result.mean_response_time == pytest.approx(expected, rel=0.05)

    def test_per_tier_utilization(self, rng):
        lam = 3.0
        result = simulate_tandem(lam, two_tiers(), 10_000.0, rng)
        assert result.tier("web").utilization == pytest.approx(
            lam / 10.0 / 2.0, abs=0.03
        )
        assert result.tier("db").utilization == pytest.approx(
            lam / 2.0 / 4.0, abs=0.05
        )

    def test_visit_ratio_thins_tier(self, rng):
        result = simulate_tandem(4.0, two_tiers(db_visit=0.25), 5000.0, rng)
        web, db = result.tier("web"), result.tier("db")
        assert db.visits == pytest.approx(0.25 * web.visits, rel=0.15)

    def test_per_tier_impact_slows_only_that_tier(self, rng_factory):
        base = simulate_tandem(2.0, two_tiers(), 20_000.0, rng_factory(1))
        slowed = simulate_tandem(
            2.0, two_tiers(a_db=0.5), 20_000.0, rng_factory(2)
        )
        assert slowed.tier("db").mean_service == pytest.approx(
            2.0 * base.tier("db").mean_service, rel=0.1
        )
        assert slowed.tier("web").mean_service == pytest.approx(
            base.tier("web").mean_service, rel=0.1
        )
        assert slowed.mean_response_time > base.mean_response_time

    def test_bottleneck_tier_dominates_under_load(self, rng):
        # Push DB near saturation: its sojourn dwarfs the web tier's.
        result = simulate_tandem(7.0, two_tiers(), 20_000.0, rng)
        assert result.tier("db").mean_sojourn > 3.0 * result.tier("web").mean_sojourn

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            simulate_tandem(0.0, two_tiers(), 10.0, rng)
        with pytest.raises(ValueError):
            simulate_tandem(1.0, [], 10.0, rng)
        with pytest.raises(ValueError):
            simulate_tandem(1.0, two_tiers(), 0.0, rng)
        dup = [TierSpec("x", 1, 1.0), TierSpec("x", 1, 1.0)]
        with pytest.raises(ValueError):
            simulate_tandem(1.0, dup, 10.0, rng)
