"""Unit tests for the online statistics accumulators."""

import numpy as np
import pytest

from repro.simulation.metrics import LossCounter, RunningStats, TimeWeightedStat


class TestRunningStats:
    def test_matches_numpy(self, rng):
        xs = rng.normal(5.0, 2.0, 10_000)
        stats = RunningStats()
        for x in xs:
            stats.add(float(x))
        assert stats.mean == pytest.approx(xs.mean())
        assert stats.variance == pytest.approx(xs.var(ddof=1), rel=1e-9)
        assert stats.minimum == xs.min()
        assert stats.maximum == xs.max()
        assert stats.count == 10_000

    def test_single_observation(self):
        stats = RunningStats()
        stats.add(3.0)
        assert stats.mean == 3.0
        assert stats.variance == 0.0
        assert stats.confidence_interval() == (3.0, 3.0)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            RunningStats().mean

    def test_confidence_interval_covers_mean(self, rng):
        xs = rng.normal(0.0, 1.0, 5000)
        stats = RunningStats()
        for x in xs:
            stats.add(float(x))
        lo, hi = stats.confidence_interval()
        assert lo < 0.05 and hi > -0.05


class TestTimeWeightedStat:
    def test_step_function_average(self):
        tw = TimeWeightedStat(0.0, start_time=0.0)
        tw.update(10.0, 4.0)   # value 0 held on [0, 10)
        tw.update(20.0, 0.0)   # value 4 held on [10, 20)
        assert tw.time_average(20.0) == pytest.approx(2.0)

    def test_current_and_max(self):
        tw = TimeWeightedStat(1.0)
        tw.update(5.0, 7.0)
        tw.update(6.0, 3.0)
        assert tw.current == 3.0
        assert tw.maximum == 7.0

    def test_finalize_extends_tail(self):
        tw = TimeWeightedStat(2.0, start_time=0.0)
        tw.finalize(10.0)
        assert tw.time_average() == pytest.approx(2.0)

    def test_average_with_now_beyond_last_update(self):
        tw = TimeWeightedStat(0.0)
        tw.update(5.0, 10.0)
        # Value 10 held from t=5 to t=10.
        assert tw.time_average(10.0) == pytest.approx(5.0)

    def test_time_backwards_rejected(self):
        tw = TimeWeightedStat(0.0)
        tw.update(5.0, 1.0)
        with pytest.raises(ValueError):
            tw.update(4.0, 1.0)
        with pytest.raises(ValueError):
            tw.time_average(4.0)

    def test_zero_duration_returns_current(self):
        tw = TimeWeightedStat(3.0, start_time=1.0)
        assert tw.time_average(1.0) == 3.0


class TestLossCounter:
    def test_counts(self):
        c = LossCounter()
        for accepted in (True, True, False, True):
            c.record(accepted)
        assert c.arrived == 4
        assert c.blocked == 1
        assert c.accepted == 3
        assert c.loss_probability == pytest.approx(0.25)

    def test_empty_counter(self):
        c = LossCounter()
        assert c.loss_probability == 0.0
        assert c.loss_confidence_interval() == (0.0, 1.0)

    def test_wilson_interval_contains_estimate(self):
        c = LossCounter()
        for i in range(1000):
            c.record(i % 100 != 0)  # 1% loss
        lo, hi = c.loss_confidence_interval()
        assert lo <= 0.01 <= hi
        assert 0.0 <= lo < hi <= 1.0

    def test_interval_narrows_with_samples(self):
        small, large = LossCounter(), LossCounter()
        for i in range(100):
            small.record(i % 10 != 0)
        for i in range(10_000):
            large.record(i % 10 != 0)
        w_small = np.diff(small.loss_confidence_interval())[0]
        w_large = np.diff(large.loss_confidence_interval())[0]
        assert w_large < w_small


class TestAccumulatorEdgeCases:
    """Boundary behaviour the exporters rely on (see repro.obs)."""

    def test_loss_counter_interval_at_zero_losses(self):
        c = LossCounter()
        for _ in range(500):
            c.record(True)
        assert c.loss_probability == 0.0
        lo, hi = c.loss_confidence_interval()
        # Wilson at p=0: the lower bound collapses to 0 but the upper bound
        # stays strictly positive — zero observed losses never certify zero risk.
        assert lo == 0.0
        assert 0.0 < hi < 0.05

    def test_loss_counter_interval_at_total_loss(self):
        c = LossCounter()
        for _ in range(500):
            c.record(False)
        assert c.loss_probability == 1.0
        lo, hi = c.loss_confidence_interval()
        assert hi == 1.0
        assert 0.95 < lo < 1.0

    def test_loss_counter_interval_single_observation(self):
        c = LossCounter()
        c.record(False)
        lo, hi = c.loss_confidence_interval()
        assert 0.0 <= lo < hi <= 1.0

    def test_time_weighted_zero_duration_window_adds_no_area(self):
        tw = TimeWeightedStat(0.0, start_time=0.0)
        tw.update(10.0, 5.0)
        tw.update(10.0, 50.0)  # zero-duration window: 5.0 held for 0 time
        tw.update(20.0, 0.0)
        # Average over [0, 20]: 0 for 10s, then 50 for 10s.
        assert tw.time_average(20.0) == pytest.approx(25.0)
        assert tw.maximum == 50.0

    def test_time_weighted_all_updates_at_start_instant(self):
        tw = TimeWeightedStat(1.0, start_time=5.0)
        tw.update(5.0, 2.0)
        tw.update(5.0, 3.0)
        # No time has passed: the average degenerates to the current value.
        assert tw.time_average() == 3.0
        assert tw.current == 3.0

    def test_time_weighted_finalize_on_zero_duration_run(self):
        tw = TimeWeightedStat(4.0, start_time=2.0)
        tw.finalize(2.0)
        assert tw.time_average() == 4.0

    def test_running_stats_min_max_single_observation(self):
        stats = RunningStats()
        stats.add(-7.5)
        assert stats.minimum == -7.5
        assert stats.maximum == -7.5
        assert stats.minimum == stats.maximum == stats.mean

    def test_running_stats_min_max_empty_raises(self):
        with pytest.raises(ValueError):
            RunningStats().minimum
        with pytest.raises(ValueError):
            RunningStats().maximum
