"""Failure-injection tests: capacity schedules on the loss network.

Shrinking the pool mid-run models server failures (or decommissioning);
growing it models repair/boot.  Blocking must respond in the direction and
magnitude Erlang predicts for each regime.
"""

import numpy as np
import pytest

from repro.core.inputs import ResourceKind
from repro.queueing.erlang import erlang_b
from repro.simulation.loss_network import LossNetwork, ServiceTraffic

CPU = ResourceKind.CPU


def network(lam=4.0, mu=1.0, servers=8):
    return LossNetwork(
        servers, [ServiceTraffic.exponential("s", lam, {CPU: mu})]
    )


class TestCapacitySchedule:
    def test_no_schedule_unchanged(self, rng_factory):
        base = network().run(5000.0, rng_factory(1))
        scheduled = network().run(5000.0, rng_factory(1), capacity_schedule=[])
        assert base.per_service_loss == scheduled.per_service_loss

    def test_failure_raises_loss(self, rng_factory):
        # Half the fleet fails at t=0: loss must approach E_4(4.0).
        healthy = network().run(10_000.0, rng_factory(2))
        degraded = network().run(
            10_000.0, rng_factory(3), capacity_schedule=[(0.0, 4)]
        )
        assert degraded.per_service_loss["s"] > healthy.per_service_loss["s"]
        assert degraded.per_service_loss["s"] == pytest.approx(
            erlang_b(4, 4.0), abs=0.02
        )

    def test_mid_run_failure_blends_regimes(self, rng):
        # 8 servers for the first half, 4 for the second: loss lands
        # between the two pure regimes.
        result = network().run(
            20_000.0, rng, capacity_schedule=[(10_000.0, 4)]
        )
        lo = erlang_b(8, 4.0)
        hi = erlang_b(4, 4.0)
        assert lo < result.per_service_loss["s"] < hi

    def test_repair_restores_service(self, rng_factory):
        # Fail at t=0, repair at t=1000 of a 20000 s run: loss must be far
        # closer to the healthy regime than to the failed one.
        result = network().run(
            20_000.0,
            rng_factory(4),
            capacity_schedule=[(0.0, 2), (1_000.0, 8)],
        )
        failed = erlang_b(2, 4.0)
        assert result.per_service_loss["s"] < 0.25 * failed

    def test_total_outage_blocks_everything_after(self, rng):
        result = network().run(
            5_000.0, rng, capacity_schedule=[(2_500.0, 0)]
        )
        # Roughly half of the arrivals fall in the outage window.
        assert 0.3 < result.per_service_loss["s"] < 0.7

    def test_in_flight_requests_drain_gracefully(self, rng):
        # Shrinking does not kill in-flight work: with slow service and a
        # capacity drop, completions keep happening after the drop.
        slow = LossNetwork(
            4, [ServiceTraffic.exponential("s", 1.0, {CPU: 0.05})]
        )
        result = slow.run(200.0, rng, capacity_schedule=[(100.0, 1)])
        accepted = result.per_service_arrived["s"] - result.per_service_blocked["s"]
        assert accepted > 0

    def test_utilization_stays_bounded_under_schedules(self, rng):
        result = network().run(
            5_000.0, rng, capacity_schedule=[(1_000.0, 2), (3_000.0, 12)]
        )
        for util in result.per_resource_utilization.values():
            assert 0.0 <= util <= 1.0

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            network().run(100.0, rng, capacity_schedule=[(-1.0, 4)])
        with pytest.raises(ValueError):
            network().run(100.0, rng, capacity_schedule=[(1.0, -4)])


class TestDynamicPlanValidation:
    def test_model_guided_shrink_preserves_qos(self, rng):
        """End-to-end: the DynamicCapacityPlanner's night-time shrink,
        replayed in the DES, keeps loss near the target."""
        from repro.core.dynamic import DynamicCapacityPlanner
        from repro.core.inputs import ServiceSpec

        svc = ServiceSpec("s", 1.0, {CPU: 1.0})
        planner = DynamicCapacityPlanner(
            [svc], loss_probability=0.01, period_length=1000.0, hold_periods=0
        )
        day_rate, night_rate = 6.0, 1.5
        n_day = planner.servers_needed({"s": day_rate})
        n_night = planner.servers_needed({"s": night_rate})
        assert n_night < n_day

        # Replay: day for 10000 s at n_day, then night traffic with the
        # pool shrunk to n_night.  Loss in both halves ~ the 1% target.
        day_net = LossNetwork(
            n_day, [ServiceTraffic.exponential("s", day_rate, {CPU: 1.0})]
        )
        day_result = day_net.run(10_000.0, rng)
        night_net = LossNetwork(
            n_day, [ServiceTraffic.exponential("s", night_rate, {CPU: 1.0})]
        )
        night_result = night_net.run(
            10_000.0, rng, capacity_schedule=[(0.0, n_night)]
        )
        assert day_result.per_service_loss["s"] <= 0.02
        assert night_result.per_service_loss["s"] <= 0.02
