"""Integration: the simulators must agree with the Erlang-B formula.

This is the validation the whole reproduction leans on — the paper
validates its model against a physical testbed; we validate ours against
an independent discrete-event simulation.
"""

import numpy as np
import pytest

from repro.core.inputs import ResourceKind
from repro.queueing.distributions import Deterministic, ErlangK, Exponential, HyperExponential
from repro.queueing.erlang import erlang_b
from repro.queueing.poisson import poisson_arrivals
from repro.simulation.loss_network import (
    LossNetwork,
    ServiceTraffic,
    simulate_loss_system,
)

CPU = ResourceKind.CPU


@pytest.mark.parametrize(
    "servers,rho",
    [(1, 0.5), (2, 1.5), (4, 3.0), (8, 6.0), (3, 0.45)],
)
def test_fast_loss_simulation_matches_erlang_b(servers, rho, rng):
    lam = 2.0
    mu = lam / rho
    arrivals = poisson_arrivals(lam, 60_000.0, rng)
    result = simulate_loss_system(arrivals, Exponential(mu), servers, rng)
    expected = erlang_b(servers, rho)
    assert result.loss_probability == pytest.approx(expected, abs=0.012)


@pytest.mark.parametrize(
    "dist_factory",
    [
        lambda mu: Exponential(mu),
        lambda mu: Deterministic(1.0 / mu),
        lambda mu: ErlangK.from_mean(1.0 / mu, k=4),
        lambda mu: HyperExponential.balanced_two_phase(1.0 / mu, scv=4.0),
    ],
    ids=["M", "D", "E4", "H2"],
)
def test_insensitivity_of_erlang_loss(dist_factory, rng):
    # Erlang B depends on the service law only through its mean: all four
    # distributions must produce the same blocking (the M/G/n/n property
    # the paper's 'general steady distribution' assumption relies on).
    servers, rho, lam = 3, 2.4, 3.0
    mu = lam / rho
    arrivals = poisson_arrivals(lam, 40_000.0, rng)
    result = simulate_loss_system(arrivals, dist_factory(mu), servers, rng)
    assert result.loss_probability == pytest.approx(erlang_b(servers, rho), abs=0.015)


def test_simulated_utilization_matches_carried_load(rng):
    servers, lam, mu = 4, 6.0, 2.0
    rho = lam / mu
    arrivals = poisson_arrivals(lam, 30_000.0, rng)
    result = simulate_loss_system(arrivals, Exponential(mu), servers, rng)
    carried = rho * (1.0 - erlang_b(servers, rho))
    assert result.busy_time_average == pytest.approx(carried, rel=0.03)


def test_loss_network_single_resource_matches_erlang_b(rng):
    servers, lam, mu = 3, 4.0, 2.0
    net = LossNetwork(
        servers, [ServiceTraffic.exponential("s", lam, {CPU: mu})]
    )
    result = net.run(20_000.0, rng)
    expected = erlang_b(servers, lam / mu)
    assert result.per_service_loss["s"] == pytest.approx(expected, abs=0.015)


def test_loss_network_superposition_matches_pooled_erlang(rng):
    # Two services with the SAME service rate pooled on shared servers is
    # exactly an Erlang system at the summed arrival rate.
    servers, mu = 4, 2.0
    net = LossNetwork(
        servers,
        [
            ServiceTraffic.exponential("a", 2.0, {CPU: mu}),
            ServiceTraffic.exponential("b", 3.0, {CPU: mu}),
        ],
    )
    result = net.run(20_000.0, rng)
    expected = erlang_b(servers, 5.0 / mu)
    for name in ("a", "b"):
        # PASTA: both services see the same blocking.
        assert result.per_service_loss[name] == pytest.approx(expected, abs=0.02)


def test_loss_network_mixed_rates_brackets_paper_and_offered_loads(rng):
    # Heterogeneous service rates: true blocking sits between the Erlang
    # prediction at the paper's arithmetic-mixture load (optimistic) and at
    # the offered load (the exact M/G insensitive answer).
    servers = 4
    net = LossNetwork(
        servers,
        [
            ServiceTraffic.exponential("fast", 6.0, {CPU: 10.0}),
            ServiceTraffic.exponential("slow", 1.0, {CPU: 0.5}),
        ],
    )
    result = net.run(30_000.0, rng)
    offered = 6.0 / 10.0 + 1.0 / 0.5  # 2.6 erlangs
    lam = 7.0
    paper = lam * lam / (6.0 * 10.0 + 1.0 * 0.5)
    b_offered = erlang_b(servers, offered)
    b_paper = erlang_b(servers, paper)
    overall = result.overall_loss
    assert b_paper <= overall + 0.02
    # Insensitivity: the mixture is M/G with mean load = offered load, so
    # the simulation should match the offered-load Erlang value closely.
    assert overall == pytest.approx(b_offered, abs=0.02)
