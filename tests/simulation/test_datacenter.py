"""Unit/integration tests for the data-center scenario runner."""

import numpy as np
import pytest

from repro.core.inputs import ModelInputs, ResourceKind, ServiceSpec
from repro.simulation.datacenter import DataCenterSimulation

CPU = ResourceKind.CPU
DISK = ResourceKind.DISK_IO


def group2_inputs():
    web = ServiceSpec(
        "web", 1200.0, {CPU: 3360.0, DISK: 1420.0}, {CPU: 0.65, DISK: 0.8}
    )
    db = ServiceSpec("db", 80.0, {CPU: 100.0}, {CPU: 0.9})
    return ModelInputs((web, db), 0.01)


@pytest.fixture
def sim():
    return DataCenterSimulation(group2_inputs())


class TestDedicatedScenario:
    def test_structure(self, sim, rng):
        result = sim.run_dedicated({"web": 4, "db": 4}, 60.0, rng)
        assert result.scenario == "dedicated"
        assert result.servers == 8
        assert set(result.per_service_loss) == {"web", "db"}
        assert result.energy.duration == pytest.approx(60.0)

    def test_loss_near_target_at_model_sizing(self, sim, rng):
        result = sim.run_dedicated({"web": 4, "db": 4}, 300.0, rng)
        # The model promises <= 1% loss; allow sampling noise.
        assert result.per_service_loss["web"] <= 0.03
        assert result.per_service_loss["db"] <= 0.03

    def test_throughput_close_to_offered(self, sim, rng):
        result = sim.run_dedicated({"web": 4, "db": 4}, 300.0, rng)
        assert result.per_service_throughput["web"] == pytest.approx(
            1200.0, rel=0.05
        )
        assert result.per_service_throughput["db"] == pytest.approx(80.0, rel=0.1)

    def test_fleet_utilization_diluted_by_islands(self, sim, rng):
        # DB islands never touch disk; web islands barely touch CPU: the
        # fleet-wide averages must be low — the waste Fig. 1(a) shows.
        result = sim.run_dedicated({"web": 4, "db": 4}, 120.0, rng)
        assert result.per_resource_utilization[CPU] < 0.3
        assert result.per_resource_utilization[DISK] < 0.3

    def test_missing_service_count_raises(self, sim, rng):
        with pytest.raises(KeyError):
            sim.run_dedicated({"web": 4}, 10.0, rng)

    def test_zero_island_rejected(self, sim, rng):
        with pytest.raises(ValueError):
            sim.run_dedicated({"web": 0, "db": 4}, 10.0, rng)


class TestConsolidatedScenario:
    def test_structure(self, sim, rng):
        result = sim.run_consolidated(4, 60.0, rng)
        assert result.scenario == "consolidated"
        assert result.servers == 4
        assert result.total_throughput > 0.0

    def test_utilization_higher_than_dedicated(self, sim, rng_factory):
        ded = sim.run_dedicated({"web": 4, "db": 4}, 200.0, rng_factory(1))
        con = sim.run_consolidated(4, 200.0, rng_factory(2))
        assert (
            con.per_resource_utilization[CPU] > ded.per_resource_utilization[CPU]
        )

    def test_more_servers_reduce_loss(self, sim, rng_factory):
        small = sim.run_consolidated(3, 200.0, rng_factory(3))
        large = sim.run_consolidated(6, 200.0, rng_factory(4))
        assert large.worst_loss <= small.worst_loss + 0.01


class TestCaseStudy:
    def test_power_saving_band(self, sim, rng):
        case = sim.run_case_study({"web": 4, "db": 4}, 4, 200.0, rng)
        # Paper: up to 53% total power saving for 8 -> 4 with Xen effects.
        assert case.power_saving == pytest.approx(0.53, abs=0.06)

    def test_utilization_improvement_exceeds_server_ratio(self, sim, rng):
        case = sim.run_case_study({"web": 4, "db": 4}, 4, 200.0, rng)
        assert case.utilization_improvement(CPU) > 2.0

    def test_workload_power_saving_positive(self, sim, rng):
        case = sim.run_case_study({"web": 4, "db": 4}, 4, 200.0, rng)
        assert case.workload_power_saving > 0.0

    def test_platform_factors_off_reduces_saving(self, rng):
        plain = DataCenterSimulation(
            group2_inputs(), xen_idle_factor=1.0, xen_workload_factor=1.0
        )
        case = plain.run_case_study({"web": 4, "db": 4}, 4, 150.0, rng)
        # Without Xen platform effects the saving tracks the server ratio.
        assert case.power_saving == pytest.approx(0.5, abs=0.05)


class TestControlledScenario:
    def _controller(self):
        from repro.control.controller import ConsolidationController, ControllerConfig
        from repro.control.fleet import FleetState
        from repro.core.dynamic import DynamicCapacityPlanner
        from repro.core.power import ServerPowerModel
        from repro.virtualization.placement import VmDemand

        inputs = group2_inputs()
        planner = DynamicCapacityPlanner(
            list(inputs.services), 0.01,
            power_model=ServerPowerModel(),
            period_length=1800.0, hold_periods=1,
        )
        vms = [VmDemand(f"vm-{i}", {CPU: 0.25}) for i in range(8)]
        fleet = FleetState(16, vms, initial_on=6)
        return ConsolidationController(
            planner, fleet, ControllerConfig(interval=10.0, pool="dc-test")
        )

    def test_run_controlled_wires_the_loop_and_meters_energy(self, sim, rng):
        controller = self._controller()
        result = sim.run_controlled(controller, 60.0, rng)
        assert result.scenario == "controlled"
        assert result.servers == 6  # the pool starts at the fleet's size
        assert set(result.per_service_loss) == {"web", "db"}
        assert controller.ticks == 6
        # Energy comes from the controller's ledger, not a static meter.
        assert result.energy.total_energy == pytest.approx(controller.energy_j)
        assert result.energy.duration == pytest.approx(
            controller.ticks * controller.planner.period_length
        )
        assert result.energy.total_energy >= result.energy.idle_energy > 0.0

    def test_run_controlled_is_seed_deterministic(self, sim, rng_factory):
        a = sim.run_controlled(self._controller(), 60.0, rng_factory(3))
        b = sim.run_controlled(self._controller(), 60.0, rng_factory(3))
        assert a == b
