"""Unit tests for the loss-system and loss-network simulations."""

import numpy as np
import pytest

from repro.core.inputs import ResourceKind
from repro.queueing.distributions import Deterministic, Exponential
from repro.queueing.poisson import poisson_arrivals
from repro.simulation.loss_network import (
    LossNetwork,
    ServiceTraffic,
    simulate_loss_system,
)

CPU = ResourceKind.CPU
DISK = ResourceKind.DISK_IO


class TestSimulateLossSystem:
    def test_no_blocking_under_light_load(self, rng):
        arrivals = poisson_arrivals(0.1, 1000.0, rng)
        result = simulate_loss_system(arrivals, Exponential(10.0), 5, rng)
        assert result.loss_probability == 0.0
        assert result.arrived == arrivals.size

    def test_zero_servers_blocks_all(self, rng):
        arrivals = poisson_arrivals(1.0, 100.0, rng)
        result = simulate_loss_system(arrivals, Exponential(1.0), 0, rng)
        assert result.loss_probability == 1.0

    def test_conservation(self, rng):
        arrivals = poisson_arrivals(5.0, 500.0, rng)
        result = simulate_loss_system(arrivals, Exponential(1.0), 3, rng)
        assert result.blocked + (result.arrived - result.blocked) == result.arrived
        assert 0.0 <= result.loss_probability <= 1.0

    def test_utilization_bounded(self, rng):
        arrivals = poisson_arrivals(50.0, 200.0, rng)
        result = simulate_loss_system(arrivals, Exponential(1.0), 4, rng)
        assert 0.0 <= result.utilization <= 1.0

    def test_deterministic_service(self, rng):
        # Insensitivity smoke test: M/D/1/1 with rho=1 blocks ~ 1/2... the
        # exact value for M/D/1/1 is rho/(1+rho) only for M/M; for M/G it is
        # E_1(rho) = rho/(1+rho) by insensitivity. Check that.
        arrivals = poisson_arrivals(1.0, 50_000.0, rng)
        result = simulate_loss_system(arrivals, Deterministic(1.0), 1, rng)
        assert result.loss_probability == pytest.approx(0.5, abs=0.01)

    def test_rejects_unsorted(self, rng):
        with pytest.raises(ValueError):
            simulate_loss_system(np.array([2.0, 1.0]), Exponential(1.0), 1, rng)

    def test_empty_arrivals(self, rng):
        result = simulate_loss_system(np.empty(0), Exponential(1.0), 1, rng)
        assert result.arrived == 0
        assert result.loss_probability == 0.0


class TestServiceTraffic:
    def test_exponential_factory_drops_infinite(self):
        t = ServiceTraffic.exponential(
            "db", 80.0, {CPU: 100.0, DISK: float("inf")}
        )
        assert CPU in t.holding
        assert DISK not in t.holding

    def test_all_infinite_rejected(self):
        with pytest.raises(ValueError):
            ServiceTraffic.exponential("x", 1.0, {CPU: float("inf")})

    def test_validation(self):
        with pytest.raises(ValueError):
            ServiceTraffic("", 1.0, {CPU: Exponential(1.0)})
        with pytest.raises(ValueError):
            ServiceTraffic("x", -1.0, {CPU: Exponential(1.0)})
        with pytest.raises(ValueError):
            ServiceTraffic("x", 1.0, {})


class TestLossNetwork:
    def test_single_resource_single_service_runs(self, rng):
        net = LossNetwork(2, [ServiceTraffic.exponential("s", 3.0, {CPU: 2.0})])
        result = net.run(500.0, rng)
        assert result.per_service_arrived["s"] > 1000
        assert 0.0 <= result.per_service_loss["s"] <= 1.0
        assert 0.0 <= result.per_resource_utilization[CPU] <= 1.0

    def test_conservation_per_service(self, rng):
        net = LossNetwork(
            3,
            [
                ServiceTraffic.exponential("a", 2.0, {CPU: 1.0}),
                ServiceTraffic.exponential("b", 1.0, {CPU: 1.0, DISK: 2.0}),
            ],
        )
        result = net.run(300.0, rng)
        for name in ("a", "b"):
            assert 0 <= result.per_service_blocked[name] <= result.per_service_arrived[name]
        assert result.total_arrived == sum(result.per_service_arrived.values())

    def test_multi_resource_blocking_dominates_single(self, rng_factory):
        # Needing two resources can only increase blocking versus one.
        single = LossNetwork(
            2, [ServiceTraffic.exponential("s", 4.0, {CPU: 1.5})]
        ).run(400.0, rng_factory(1))
        double = LossNetwork(
            2,
            [ServiceTraffic.exponential("s", 4.0, {CPU: 1.5, DISK: 1.5})],
        ).run(400.0, rng_factory(1))
        assert (
            double.per_service_loss["s"] >= single.per_service_loss["s"] - 0.02
        )

    def test_more_servers_less_loss(self, rng_factory):
        traffic = [ServiceTraffic.exponential("s", 10.0, {CPU: 2.0})]
        small = LossNetwork(2, traffic).run(300.0, rng_factory(2))
        big = LossNetwork(10, traffic).run(300.0, rng_factory(2))
        assert big.per_service_loss["s"] < small.per_service_loss["s"]

    def test_loss_ci_brackets_estimate(self, rng):
        net = LossNetwork(1, [ServiceTraffic.exponential("s", 2.0, {CPU: 1.0})])
        result = net.run(500.0, rng)
        lo, hi = result.per_service_loss_ci["s"]
        assert lo <= result.per_service_loss["s"] <= hi

    def test_validation(self):
        with pytest.raises(ValueError):
            LossNetwork(0, [ServiceTraffic.exponential("s", 1.0, {CPU: 1.0})])
        with pytest.raises(ValueError):
            LossNetwork(1, [])
        t = ServiceTraffic.exponential("s", 1.0, {CPU: 1.0})
        with pytest.raises(ValueError):
            LossNetwork(1, [t, t])
        with pytest.raises(ValueError):
            LossNetwork(1, [t]).run(0.0, np.random.default_rng())


class TestTelemetryRecording:
    def net(self, pool="web", power=False):
        from repro.core.power import ServerPowerModel

        return LossNetwork(
            3,
            [ServiceTraffic.exponential("s", 4.0, {CPU: 2.0})],
            pool=pool,
            power_model=ServerPowerModel() if power else None,
        )

    def test_pool_series_recorded(self, rng):
        from repro.obs import TelemetryBus, scoped_bus

        bus = TelemetryBus(bucket_width=10.0)
        with scoped_bus(bus):
            net = self.net(power=True)
        result = net.run(100.0, rng)
        names = {(s.name, dict(s.labels).get("pool")) for s in bus.series()}
        for expected in (
            "pool.occupancy", "pool.capacity", "pool.busy_servers",
            "pool.arrivals", "pool.admits", "pool.losses",
            "pool.power_watts",
        ):
            assert (expected, "web") in names
        arrivals = next(
            s for s in bus.series() if s.name == "pool.arrivals"
        )
        assert arrivals.total == result.total_arrived

    def test_telemetry_does_not_disturb_rng(self, rng_factory):
        from repro.obs import TelemetryBus, scoped_bus

        plain = self.net().run(200.0, rng_factory(9))
        with scoped_bus(TelemetryBus()):
            observed = self.net().run(200.0, rng_factory(9))
        assert observed.per_service_loss == plain.per_service_loss
        assert observed.total_arrived == plain.total_arrived

    def test_admits_plus_losses_equal_arrivals(self, rng):
        from repro.obs import TelemetryBus, scoped_bus

        bus = TelemetryBus(bucket_width=10.0)
        with scoped_bus(bus):
            net = self.net()
        net.run(100.0, rng)
        by_name = {s.name: s for s in bus.series()}
        assert (
            by_name["pool.admits"].total + by_name["pool.losses"].total
            == by_name["pool.arrivals"].total
        )


class TestRateSchedule:
    def traffic(self, rate=6.0):
        return [ServiceTraffic.exponential("s", rate, {CPU: 2.0})]

    def test_constant_schedule_matches_homogeneous_intensity(self, rng):
        net = LossNetwork(4, self.traffic(rate=0.001))
        result = net.run(
            2000.0, rng, rate_schedule={"s": [(0.0, 6.0)]}
        )
        # Offered load 3 erlangs on 4 servers: loss well under 30%,
        # arrivals close to 6/unit time.
        assert result.total_arrived == pytest.approx(12000, rel=0.1)
        assert result.per_service_loss["s"] < 0.3

    def test_rate_steps_modulate_arrivals(self, rng):
        net = LossNetwork(50, self.traffic())
        quiet_then_busy = net.run(
            100.0, rng,
            rate_schedule={"s": [(0.0, 1.0), (50.0, 20.0)]},
        )
        assert quiet_then_busy.total_arrived == pytest.approx(
            1.0 * 50 + 20.0 * 50, rel=0.15
        )

    def test_no_schedule_is_byte_identical_to_legacy_path(self, rng_factory):
        legacy = LossNetwork(3, self.traffic()).run(300.0, rng_factory(4))
        modern = LossNetwork(3, self.traffic()).run(
            300.0, rng_factory(4), rate_schedule=None
        )
        assert legacy.per_service_arrived == modern.per_service_arrived
        assert legacy.per_service_blocked == modern.per_service_blocked

    def test_validation(self, rng):
        net = LossNetwork(3, self.traffic())
        with pytest.raises(ValueError, match="unknown service"):
            net.run(10.0, rng, rate_schedule={"ghost": [(0.0, 1.0)]})
        with pytest.raises(ValueError, match="non-empty"):
            net.run(10.0, rng, rate_schedule={"s": []})
        with pytest.raises(ValueError, match=">= 0"):
            net.run(10.0, rng, rate_schedule={"s": [(-1.0, 1.0)]})
        with pytest.raises(ValueError, match="identically zero"):
            net.run(10.0, rng, rate_schedule={"s": [(0.0, 0.0)]})
