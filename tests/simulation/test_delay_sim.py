"""Unit + validation tests for the delay-system simulation."""

import numpy as np
import pytest

from repro.queueing.distributions import Deterministic, Exponential
from repro.queueing.mmn import mmn_delay_metrics
from repro.simulation.delay_sim import response_time_curve, simulate_delay_system


class TestBasics:
    def test_light_load_no_waiting(self, rng):
        r = simulate_delay_system(0.5, Exponential(10.0), 4, 2000.0, rng)
        assert r.mean_wait == pytest.approx(0.0, abs=1e-3)
        assert r.probability_of_wait < 0.01
        assert r.mean_response_time == pytest.approx(0.1, rel=0.1)

    def test_conservation_of_completions(self, rng):
        r = simulate_delay_system(5.0, Exponential(2.0), 4, 1000.0, rng)
        # About lambda * (horizon - warmup) completions.
        assert r.completed == pytest.approx(5.0 * 900.0, rel=0.1)

    def test_utilization_tracks_offered_load(self, rng):
        r = simulate_delay_system(6.0, Exponential(2.0), 4, 2000.0, rng)
        assert r.utilization == pytest.approx(6.0 / 2.0 / 4.0, abs=0.05)

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            simulate_delay_system(0.0, 1.0, 1, 10.0, rng)
        with pytest.raises(ValueError):
            simulate_delay_system(1.0, 1.0, 0, 10.0, rng)
        with pytest.raises(ValueError):
            simulate_delay_system(1.0, 1.0, 1, 0.0, rng)
        with pytest.raises(ValueError):
            simulate_delay_system(1.0, 1.0, 1, 10.0, rng, warmup_fraction=1.0)


class TestAgainstClosedForms:
    def test_mm1_response_time(self, rng):
        # M/M/1: W = 1/(mu - lambda) = 1/(5-2) s.
        r = simulate_delay_system(2.0, Exponential(5.0), 1, 30_000.0, rng)
        assert r.mean_response_time == pytest.approx(1.0 / 3.0, rel=0.05)

    def test_mmn_matches_erlang_c_metrics(self, rng):
        lam, mu, n = 8.0, 3.0, 4
        r = simulate_delay_system(lam, Exponential(mu), n, 30_000.0, rng)
        expected = mmn_delay_metrics(lam, mu, n)
        assert r.mean_wait == pytest.approx(expected.mean_wait, rel=0.1)
        assert r.mean_response_time == pytest.approx(
            expected.mean_response_time, rel=0.08
        )
        assert r.probability_of_wait == pytest.approx(
            expected.probability_of_wait, abs=0.05
        )
        assert r.mean_queue_length == pytest.approx(
            expected.mean_queue_length, rel=0.2
        )

    def test_md1_waits_half_of_mm1(self, rng):
        # Pollaczek-Khinchine: deterministic service halves the M/M/1 wait.
        lam, mu = 2.0, 4.0
        mm1 = simulate_delay_system(lam, Exponential(mu), 1, 40_000.0, rng)
        md1 = simulate_delay_system(lam, Deterministic(1.0 / mu), 1, 40_000.0, rng)
        assert md1.mean_wait == pytest.approx(mm1.mean_wait / 2.0, rel=0.15)


class TestResponseCurve:
    def test_knee_shape(self, rng):
        rates = np.array([1.0, 4.0, 7.0, 7.8])
        curve = response_time_curve(rates, 2.0, 4, 4000.0, rng)
        # Monotone growth with a sharp knee near saturation (rho -> n).
        assert (np.diff(curve) > -1e-6).all()
        assert curve[-1] > 3.0 * curve[0]
