"""Unit tests for the discrete-event engine."""

import pytest

from repro.obs import TelemetryBus, scoped_bus
from repro.simulation.engine import Simulator


class TestScheduling:
    def test_events_fire_in_time_order(self):
        sim = Simulator()
        order = []
        sim.schedule_at(3.0, lambda: order.append("c"))
        sim.schedule_at(1.0, lambda: order.append("a"))
        sim.schedule_at(2.0, lambda: order.append("b"))
        sim.run()
        assert order == ["a", "b", "c"]

    def test_ties_break_by_insertion(self):
        sim = Simulator()
        order = []
        sim.schedule_at(1.0, lambda: order.append(1))
        sim.schedule_at(1.0, lambda: order.append(2))
        sim.schedule_at(1.0, lambda: order.append(3))
        sim.run()
        assert order == [1, 2, 3]

    def test_now_advances(self):
        sim = Simulator()
        seen = []
        sim.schedule_at(5.0, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [5.0]
        assert sim.now == 5.0

    def test_schedule_in_is_relative(self):
        sim = Simulator()
        times = []
        def first():
            times.append(sim.now)
            sim.schedule_in(2.5, lambda: times.append(sim.now))
        sim.schedule_at(1.0, first)
        sim.run()
        assert times == [1.0, 3.5]

    def test_cannot_schedule_into_past(self):
        sim = Simulator()
        sim.schedule_at(10.0, lambda: None)
        sim.run()
        with pytest.raises(ValueError):
            sim.schedule_at(5.0, lambda: None)

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            Simulator().schedule_in(-1.0, lambda: None)


class TestRunControl:
    def test_run_until_stops_early(self):
        sim = Simulator()
        fired = []
        sim.schedule_at(1.0, lambda: fired.append(1))
        sim.schedule_at(10.0, lambda: fired.append(10))
        sim.run(until=5.0)
        assert fired == [1]
        assert sim.now == 5.0
        assert sim.pending == 1

    def test_run_until_includes_boundary(self):
        sim = Simulator()
        fired = []
        sim.schedule_at(5.0, lambda: fired.append(5))
        sim.run(until=5.0)
        assert fired == [5]

    def test_cancelled_events_skipped(self):
        sim = Simulator()
        fired = []
        ev = sim.schedule_at(1.0, lambda: fired.append("dead"))
        sim.schedule_at(2.0, lambda: fired.append("alive"))
        ev.cancel()
        sim.run()
        assert fired == ["alive"]

    def test_pending_counts_live_only(self):
        sim = Simulator()
        ev = sim.schedule_at(1.0, lambda: None)
        sim.schedule_at(2.0, lambda: None)
        ev.cancel()
        assert sim.pending == 1

    def test_step_returns_false_when_drained(self):
        sim = Simulator()
        assert sim.step() is False
        sim.schedule_at(1.0, lambda: None)
        assert sim.step() is True
        assert sim.step() is False

    def test_cascading_events(self):
        # Events scheduling further events: a 1000-step chain completes.
        sim = Simulator()
        count = [0]
        def tick():
            count[0] += 1
            if count[0] < 1000:
                sim.schedule_in(0.001, tick)
        sim.schedule_at(0.0, tick)
        sim.run()
        assert count[0] == 1000

    def test_not_reentrant(self):
        sim = Simulator()
        errors = []
        def recurse():
            try:
                sim.run()
            except RuntimeError as e:
                errors.append(e)
        sim.schedule_at(0.0, recurse)
        sim.run()
        assert len(errors) == 1


class TestTelemetryStep:
    """The construct-time-bound telemetry step and its bucket cache."""

    def drive(self, bus, n=50, dt=0.5):
        with scoped_bus(bus):
            sim = Simulator()
        for i in range(n):
            sim.schedule_at(i * dt, lambda: None)
        sim.run()
        return sim

    def test_every_executed_event_recorded(self):
        bus = TelemetryBus(bucket_width=1.0)
        self.drive(bus, n=50)
        (executed,) = [
            s for s in bus.series()
            if s.name == "engine.events" and ("kind", "executed") in s.labels
        ]
        assert executed.total == 50.0
        # Two 0.5-spaced events per unit-width bucket.
        assert executed.values() == [2.0] * 25

    def test_cancelled_events_counted_as_skipped(self):
        bus = TelemetryBus(bucket_width=1.0)
        with scoped_bus(bus):
            sim = Simulator()
        keep = sim.schedule_at(1.0, lambda: None)
        sim.schedule_at(2.0, lambda: None).cancel()
        sim.run()
        assert keep is not None
        skipped = [
            s for s in bus.series()
            if s.name == "engine.events" and ("kind", "skipped") in s.labels
        ]
        assert sum(s.total for s in skipped) == 1.0

    def test_cache_survives_decimation(self):
        # A horizon far beyond max_buckets forces mid-run decimation; the
        # engine's cached bucket window must refresh, not drop samples.
        bus = TelemetryBus(bucket_width=1.0, max_buckets=4)
        self.drive(bus, n=200, dt=1.0)  # t up to 199 >> 4 buckets
        (executed,) = [
            s for s in bus.series()
            if s.name == "engine.events" and ("kind", "executed") in s.labels
        ]
        assert executed.total == 200.0
        assert executed.decimations >= 1
        assert executed.buckets <= 4

    def test_disabled_bus_leaves_plain_step(self):
        sim = Simulator()
        assert "step" not in vars(sim)  # class method, not a closure

    def test_bus_clock_follows_virtual_time(self):
        bus = TelemetryBus()
        with scoped_bus(bus):
            sim = Simulator()
        sim.schedule_at(7.25, lambda: None)
        sim.run()
        assert bus.now == 7.25
