"""Unit tests for the fluid flow-control simulation."""

import numpy as np
import pytest

from repro.simulation.fluid import demand_trace_from_rates, simulate_flow_control
from repro.virtualization.rainbow import (
    IdealFlow,
    ProportionalFlow,
    StaticPartition,
)


def antiphase_demands(periods=100, amp=0.8, level=2.0):
    phase = np.linspace(0.0, 4.0 * np.pi, periods)
    return {
        "web": level * (1.0 + amp * np.sin(phase)),
        "db": level * (1.0 - amp * np.sin(phase)),
    }


class TestSimulateFlowControl:
    def test_ideal_serves_everything_with_enough_capacity(self):
        result = simulate_flow_control(IdealFlow(), antiphase_demands(), 4.0)
        assert result.goodput_fraction == pytest.approx(1.0)
        assert result.loss_fraction == pytest.approx(0.0)

    def test_static_partition_clips_peaks(self):
        # 50/50 split of 4 units caps each service at 2.0, but anti-phase
        # peaks reach 3.6: static partitioning must lose work.
        result = simulate_flow_control(
            StaticPartition(fractions={"web": 0.5, "db": 0.5}),
            antiphase_demands(),
            4.0,
        )
        assert result.goodput_fraction < 0.95

    def test_flowing_beats_static(self):
        demands = antiphase_demands()
        static = simulate_flow_control(
            StaticPartition(fractions={"web": 0.5, "db": 0.5}), demands, 4.0
        )
        flowing = simulate_flow_control(ProportionalFlow(), demands, 4.0)
        assert flowing.goodput_fraction > static.goodput_fraction

    def test_reallocation_tax_costs_goodput(self):
        demands = antiphase_demands()
        free = simulate_flow_control(ProportionalFlow(), demands, 3.0)
        taxed = simulate_flow_control(
            ProportionalFlow(reallocation_tax=0.05), demands, 3.0
        )
        assert taxed.goodput_fraction < free.goodput_fraction

    def test_offered_work_bookkeeping(self):
        demands = {"a": np.array([1.0, 2.0]), "b": np.array([0.5, 0.5])}
        result = simulate_flow_control(IdealFlow(), demands, 10.0)
        assert result.offered_work["a"] == pytest.approx(3.0)
        assert result.served_work["a"] == pytest.approx(3.0)
        assert result.service_goodput("b") == pytest.approx(1.0)

    def test_zero_capacity_serves_nothing(self):
        result = simulate_flow_control(IdealFlow(), antiphase_demands(), 0.0)
        assert result.total_served == 0.0
        assert result.goodput_fraction == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            simulate_flow_control(IdealFlow(), {}, 1.0)
        with pytest.raises(ValueError):
            simulate_flow_control(
                IdealFlow(), {"a": np.array([1.0]), "b": np.array([1.0, 2.0])}, 1.0
            )
        with pytest.raises(ValueError):
            simulate_flow_control(IdealFlow(), {"a": np.array([-1.0])}, 1.0)
        with pytest.raises(ValueError):
            simulate_flow_control(IdealFlow(), {"a": np.array([1.0])}, -1.0)


class TestDemandTraces:
    def test_mean_work_matches_rates(self, rng):
        traces = demand_trace_from_rates([100.0, 10.0], [0.01, 0.1], 2000, rng)
        assert traces[0].mean() == pytest.approx(1.0, rel=0.05)
        assert traces[1].mean() == pytest.approx(1.0, rel=0.05)

    def test_shapes(self, rng):
        traces = demand_trace_from_rates([5.0], [1.0], 50, rng)
        assert traces[0].shape == (50,)

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            demand_trace_from_rates([1.0], [1.0, 2.0], 10, rng)
        with pytest.raises(ValueError):
            demand_trace_from_rates([1.0], [1.0], 0, rng)
        with pytest.raises(ValueError):
            demand_trace_from_rates([-1.0], [1.0], 10, rng)
