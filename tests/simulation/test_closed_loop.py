"""simulate_closed_loop validated against exact MVA (product-form truth).

The closed network with exponential think and service times is
product-form, so steady-state throughput and per-station utilization from
the event-driven simulator must converge on the exact-MVA solution — the
same pairing the paper uses to trust its analytic sizing.
"""

import numpy as np
import pytest

from repro.queueing.mva import exact_mva
from repro.simulation.closed_loop import ClosedLoopResult, simulate_closed_loop

DEMANDS = {"web": 0.05, "app": 0.08, "db": 0.12}
THINK = 1.0


def _run(population=12, horizon=4000.0, seed=7, **kwargs) -> ClosedLoopResult:
    rng = np.random.default_rng(seed)
    return simulate_closed_loop(
        population, THINK, DEMANDS, horizon, rng, **kwargs
    )


class TestAgainstExactMva:
    def test_throughput_matches(self):
        result = _run()
        mva = exact_mva(DEMANDS, THINK, 12)
        assert result.throughput == pytest.approx(mva.throughput, rel=0.05)
        assert result.mean_cycle_time == pytest.approx(mva.cycle_time, rel=0.05)

    def test_per_station_utilization_follows_the_utilization_law(self):
        result = _run()
        mva = exact_mva(DEMANDS, THINK, 12)
        expected = mva.utilization(DEMANDS)
        for station, util in result.per_station_utilization.items():
            assert util == pytest.approx(expected[station], abs=0.05)
        # The bottleneck (largest demand) is the busiest station.
        busiest = max(
            result.per_station_utilization,
            key=result.per_station_utilization.get,
        )
        assert busiest == "db"

    @pytest.mark.parametrize("population", [1, 4, 30])
    def test_tracks_mva_across_the_population_sweep(self, population):
        rng = np.random.default_rng(23)
        result = simulate_closed_loop(population, THINK, DEMANDS, 4000.0, rng)
        mva = exact_mva(DEMANDS, THINK, population)
        assert result.throughput == pytest.approx(mva.throughput, rel=0.08)

    def test_queue_lengths_are_sane(self):
        result = _run(population=30)
        mva = exact_mva(DEMANDS, THINK, 30)
        # Waiting-room sizes track MVA's (queue - in-service) loosely.
        for station, queue in result.per_station_mean_queue.items():
            analytic_waiting = (
                mva.queue_lengths[station]
                - result.per_station_utilization[station]
            )
            assert queue == pytest.approx(analytic_waiting, abs=1.0)


class TestDeterminism:
    def test_same_seed_is_bit_identical(self):
        a = _run(seed=42)
        b = _run(seed=42)
        assert a == b

    def test_different_seed_changes_the_sample_path(self):
        a = _run(seed=42)
        b = _run(seed=43)
        assert a.completed_cycles != b.completed_cycles


class TestEdges:
    def test_single_station_single_customer(self):
        # N=1 never queues: cycle time is exactly Z + D in expectation.
        rng = np.random.default_rng(5)
        result = simulate_closed_loop(1, THINK, {"only": 0.2}, 6000.0, rng)
        mva = exact_mva({"only": 0.2}, THINK, 1)
        assert result.population == 1
        assert result.throughput == pytest.approx(mva.throughput, rel=0.05)
        assert result.per_station_mean_queue["only"] == pytest.approx(
            0.0, abs=1e-9
        )

    def test_zero_think_time_is_allowed(self):
        rng = np.random.default_rng(9)
        result = simulate_closed_loop(4, 0.0, {"s": 0.1}, 500.0, rng)
        # Single station with Z=0 saturates: utilization -> 1.
        assert result.per_station_utilization["s"] > 0.9

    @pytest.mark.parametrize(
        "population, think, demands, horizon",
        [
            (0, THINK, DEMANDS, 100.0),
            (-3, THINK, DEMANDS, 100.0),
            (4, -0.1, DEMANDS, 100.0),
            (4, THINK, {}, 100.0),
            (4, THINK, {"s": 0.0}, 100.0),
            (4, THINK, {"s": -1.0}, 100.0),
            (4, THINK, DEMANDS, 0.0),
            (4, THINK, DEMANDS, -5.0),
        ],
    )
    def test_rejects_bad_inputs(self, population, think, demands, horizon):
        with pytest.raises(ValueError):
            simulate_closed_loop(
                population, think, demands, horizon, np.random.default_rng(0)
            )
