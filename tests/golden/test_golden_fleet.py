"""Golden snapshot of the fleet audit summary at seed 2009.

``fleet.json`` pins the scenario economics, deltas, and decision the
aggregator derives from the fast-mode fig11/fig12/fig13/table1 summaries
under the **default** audit assumptions.  Anything that moves a priced
number — the power model, the metering pipeline, the assumption defaults,
the delta arithmetic — fails here with a field-level diff.

Bless intentional changes together with the experiment snapshot::

    PYTHONPATH=src python -m pytest tests/golden --update-golden
"""

import json
from pathlib import Path

import pytest

from repro.experiments import runner as _runner  # noqa: F401  (registers)
from repro.experiments.base import get_experiment
from repro.obs.fleet import AuditAssumptions, build_fleet_summary
from repro.obs.ledger import build_ledger, ledger_with_live_results

GOLDEN_PATH = Path(__file__).parent / "fleet.json"
SEED = 2009
EXPERIMENTS = ("fig11", "fig12", "fig13", "table1")


def current_snapshot() -> dict:
    summaries = {
        name: get_experiment(name)(seed=SEED, fast=True).summary
        for name in EXPERIMENTS
    }
    ledger = ledger_with_live_results(
        build_ledger([]), summaries, seed=SEED
    )
    summary = build_fleet_summary(ledger, AuditAssumptions())
    return {
        "_comment": "Regenerate with: pytest tests/golden --update-golden "
        "(review the diff before committing).",
        "seed": SEED,
        "fast": True,
        "experiments": list(EXPERIMENTS),
        "assumptions": summary["assumptions"],
        "scenarios": summary["scenarios"],
        "deltas": summary["deltas"],
        "decision": summary["decision"],
        "notes": summary["notes"],
    }


def _flatten(prefix, value, out):
    if isinstance(value, dict):
        for k, v in value.items():
            _flatten(f"{prefix}.{k}" if prefix else str(k), v, out)
    else:
        out[prefix] = value


def test_fleet_summary_matches_golden(update_golden):
    snapshot = current_snapshot()
    if update_golden:
        GOLDEN_PATH.write_text(
            json.dumps(snapshot, indent=2, sort_keys=True) + "\n"
        )
        pytest.skip(f"golden snapshot rewritten: {GOLDEN_PATH}")
    assert GOLDEN_PATH.exists(), (
        f"{GOLDEN_PATH} missing - generate it with "
        "`pytest tests/golden --update-golden`"
    )
    golden = json.loads(GOLDEN_PATH.read_text())

    flat_golden, flat_current = {}, {}
    for section in ("assumptions", "scenarios", "deltas", "decision"):
        _flatten(section, golden.get(section, {}), flat_golden)
        _flatten(section, snapshot.get(section, {}), flat_current)
    mismatches = [
        f"{key}: golden={flat_golden.get(key)!r} "
        f"current={flat_current.get(key)!r}"
        for key in sorted(set(flat_golden) | set(flat_current))
        if flat_golden.get(key) != flat_current.get(key)
    ]
    assert not mismatches, (
        "fleet audit drifted from tests/golden/fleet.json "
        "(bless intentional changes with --update-golden):\n  "
        + "\n  ".join(mismatches)
    )


def test_golden_fleet_file_is_well_formed():
    golden = json.loads(GOLDEN_PATH.read_text())
    assert golden["seed"] == SEED and golden["fast"] is True
    assert set(golden["scenarios"]) == {"dedicated", "consolidated", "projected"}
    assert golden["decision"]["recommendation"] == "consolidated"
    for delta in golden["deltas"].values():
        assert "cost_saved_usd" in delta and "carbon_saved_kg" in delta
