"""Golden snapshot of every experiment's fast-mode summary at seed 2009.

``experiments.json`` pins the exact numbers the whole suite produced when
it was last blessed.  Any change to model code, seeding, or experiment
wiring that moves *any* headline number fails here with a field-level
diff — the broadest regression net the repo has, and the determinism
contract's long-term memory.

To bless intentional changes::

    PYTHONPATH=src python -m pytest tests/golden --update-golden

then review the ``experiments.json`` diff like code: every changed number
must be explainable by the change you just made.
"""

import json
from pathlib import Path

import pytest

from repro.experiments.runner import run_all

GOLDEN_PATH = Path(__file__).parent / "experiments.json"
SEED = 2009


def _jsonable(value):
    """Summaries hold plain scalars; numpy scalars sneak in via rounding."""
    if hasattr(value, "item"):
        return value.item()
    return value


def current_snapshot() -> dict:
    results = run_all(seed=SEED, fast=True)
    return {
        "_comment": "Regenerate with: pytest tests/golden --update-golden "
        "(review the diff before committing).",
        "seed": SEED,
        "fast": True,
        "experiments": {
            name: {k: _jsonable(v) for k, v in result.summary.items()}
            for name, result in sorted(results.items())
        },
    }


def test_summaries_match_golden(update_golden):
    snapshot = current_snapshot()
    if update_golden:
        GOLDEN_PATH.write_text(
            json.dumps(snapshot, indent=2, sort_keys=True) + "\n"
        )
        pytest.skip(f"golden snapshot rewritten: {GOLDEN_PATH}")
    assert GOLDEN_PATH.exists(), (
        f"{GOLDEN_PATH} missing - generate it with "
        "`pytest tests/golden --update-golden`"
    )
    golden = json.loads(GOLDEN_PATH.read_text())

    assert sorted(snapshot["experiments"]) == sorted(golden["experiments"]), (
        "experiment registry changed; regenerate the golden snapshot"
    )
    mismatches = []
    for name, golden_summary in golden["experiments"].items():
        got = snapshot["experiments"][name]
        for key in sorted(set(golden_summary) | set(got)):
            if golden_summary.get(key) != got.get(key):
                mismatches.append(
                    f"{name}.{key}: golden={golden_summary.get(key)!r} "
                    f"current={got.get(key)!r}"
                )
    assert not mismatches, (
        "summaries drifted from tests/golden/experiments.json "
        "(bless intentional changes with --update-golden):\n  "
        + "\n  ".join(mismatches)
    )


def test_golden_file_is_well_formed():
    golden = json.loads(GOLDEN_PATH.read_text())
    assert golden["seed"] == SEED and golden["fast"] is True
    assert len(golden["experiments"]) >= 16
    for name, summary in golden["experiments"].items():
        assert isinstance(summary, dict) and summary, name
