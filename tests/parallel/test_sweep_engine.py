"""Unit tests for the sweep engine's moving parts.

Determinism across job counts is pinned in ``test_determinism.py``; this
file covers the mechanics it relies on — seed derivation, chunking,
ordering, stats accounting, and the graceful pool fallback.
"""

import pytest

from repro.obs import MetricsRegistry, TraceLog, scoped_registry, scoped_trace
from repro.parallel import ParallelSweep, chunk_grid, seed_for, sweep_map
from repro.parallel import sweep as sweep_mod


def _square(x):
    return x * x


def _item_and_seed(x, *, seed):
    return (x, seed)


def _invert_small(rho):
    from repro.parallel import cached_min_servers

    return cached_min_servers(rho, 0.01)


class TestSeedFor:
    def test_deterministic(self):
        assert seed_for(2009, 7) == seed_for(2009, 7)

    def test_varies_with_base_seed_and_index(self):
        seeds = {seed_for(b, i) for b in (0, 1, 2009) for i in range(8)}
        assert len(seeds) == 24  # no collisions across a small grid

    def test_64_bit_range(self):
        s = seed_for(2009, 0)
        assert 0 <= s < 2**64

    def test_independent_of_chunking(self):
        # The seed is a function of the task's grid index alone; the chunk
        # it lands in does not appear in the derivation at all.  Pin that
        # by recomputing the seeds a 3-chunk and a 5-chunk partition of
        # the same grid would hand their tasks.
        grid_len = 13
        for chunk_size in (3, 5):
            seeds = []
            for start, items in chunk_grid(list(range(grid_len)), chunk_size):
                seeds.extend(seed_for(42, start + off) for off in range(len(items)))
            assert seeds == [seed_for(42, i) for i in range(grid_len)]

    def test_negative_index_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            seed_for(2009, -1)


class TestChunkGrid:
    def test_partitions_in_order(self):
        chunks = list(chunk_grid(list(range(10)), 4))
        assert chunks == [(0, [0, 1, 2, 3]), (4, [4, 5, 6, 7]), (8, [8, 9])]

    def test_single_chunk(self):
        assert list(chunk_grid([1, 2], 100)) == [(0, [1, 2])]

    def test_empty_grid(self):
        assert list(chunk_grid([], 3)) == []

    def test_rejects_bad_chunk_size(self):
        with pytest.raises(ValueError, match="positive"):
            list(chunk_grid([1], 0))


class TestParallelSweep:
    def test_serial_maps_in_order(self):
        assert sweep_map(_square, range(7)) == [x * x for x in range(7)]

    def test_seeded_tasks_get_index_seeds(self):
        rows = sweep_map(_item_and_seed, ["a", "b", "c"], base_seed=11)
        assert rows == [("a", seed_for(11, 0)), ("b", seed_for(11, 1)),
                        ("c", seed_for(11, 2))]

    def test_pool_preserves_grid_order(self):
        rows = sweep_map(_square, range(20), jobs=2, chunk_size=3)
        assert rows == [x * x for x in range(20)]

    def test_empty_grid(self):
        sweep = ParallelSweep(_square, jobs=2)
        assert sweep.run([]) == []
        assert sweep.stats.tasks == 0

    def test_rejects_bad_jobs_and_chunk_size(self):
        with pytest.raises(ValueError, match="jobs"):
            ParallelSweep(_square, jobs=0)
        with pytest.raises(ValueError, match="chunk size"):
            ParallelSweep(_square, chunk_size=0)

    def test_stats_accounting(self):
        sweep = ParallelSweep(_square, jobs=2, chunk_size=4)
        sweep.run(range(10))
        stats = sweep.stats
        assert (stats.tasks, stats.chunks, stats.jobs) == (10, 3, 2)
        assert stats.pool_used
        assert stats.wall_s > 0.0
        doc = stats.as_dict()
        assert doc["tasks"] == 10 and "cache_hits" in doc

    def test_single_chunk_runs_inline(self):
        # One chunk means the pool buys nothing; the engine skips it.
        sweep = ParallelSweep(_square, jobs=4, chunk_size=10)
        assert sweep.run([1, 2, 3]) == [1, 4, 9]
        assert not sweep.stats.pool_used

    def test_pool_failure_falls_back_to_serial(self, monkeypatch):
        def refuse(*args, **kwargs):
            raise OSError("no fork for you")

        monkeypatch.setattr(sweep_mod, "ProcessPoolExecutor", refuse)
        trace = TraceLog()
        with scoped_trace(trace):
            rows = sweep_map(_square, range(9), jobs=3, chunk_size=2)
        assert rows == [x * x for x in range(9)]
        warnings = [e for e in trace.events() if e.name == "sweep_pool_unavailable"]
        assert len(warnings) == 1

    def test_records_sweep_metrics(self):
        registry = MetricsRegistry("test")
        with scoped_registry(registry):
            sweep_map(_square, range(5), name="unit")
        snap = registry.snapshot()
        series = snap["sweep_tasks_total"]["series"]
        assert series == [{"labels": {"sweep": "unit"}, "value": 5.0}]
        assert "sweep_seconds" in snap

    def test_pool_merges_worker_cache_counters(self):
        registry = MetricsRegistry("test")
        with scoped_registry(registry):
            sweep_map(_invert_small, [3.0, 5.0, 7.0, 9.0], jobs=2, chunk_size=2)
        snap = registry.snapshot()
        # Each worker performs two cache lookups; whether those land as
        # hits or misses depends on what the forked child inherited, but
        # the shipped-back deltas must account for all four, labelled as
        # worker-origin activity.
        total = 0.0
        for metric in ("erlang_cache_hits_total", "erlang_cache_misses_total"):
            for series in snap.get(metric, {}).get("series", []):
                assert series["labels"] == {"origin": "workers"}
                total += series["value"]
        assert total == 4.0

    def test_worker_exception_propagates(self):
        with pytest.raises(ZeroDivisionError):
            sweep_map(_divide_by_zero, range(8), jobs=2, chunk_size=2)


def _divide_by_zero(x):
    return x / 0


class TestRegisteredBenchmarks:
    def test_bench_workload_is_deterministic(self):
        from repro.parallel import benchreg

        rows = benchreg.run_sweep(1)
        assert len(rows) == len(benchreg.GRID)
        assert rows == benchreg.bench_parallel_sweep_serial()
        assert rows == benchreg.bench_parallel_sweep_jobs4()

    def test_import_registers_both_variants(self):
        # In a fresh interpreter (the repro-bench CLI's situation — the
        # in-process registry here may have been cleared by other tests),
        # importing benchreg must register the serial and jobs4 specs.
        import subprocess
        import sys

        out = subprocess.run(
            [
                sys.executable,
                "-c",
                "import repro.parallel.benchreg\n"
                "from repro.obs.bench import registered_benchmarks\n"
                "print(sorted(s.name for s in registered_benchmarks()))",
            ],
            capture_output=True,
            text=True,
            check=True,
        )
        assert "parallel_sweep::jobs4" in out.stdout
        assert "parallel_sweep::serial" in out.stdout
