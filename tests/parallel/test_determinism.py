"""The engine's contract: ``jobs=N`` output is bit-identical to ``jobs=1``.

Pinned at three levels — toy functions through the raw engine, the
sweep-heavy experiment helpers at reduced horizons, and whole experiments
through the runner — each parametrized over jobs in {1, 2, 4}.  All
comparisons are exact equality (``==`` on floats), not approx: the
guarantee is *bit*-identical, and anything weaker would let seed-handling
regressions hide inside tolerances.
"""

import numpy as np
import pytest

from repro.experiments import ext_scale
from repro.experiments.casestudy import GROUP1, GROUP2
from repro.experiments.fig10_group1 import consolidation_sweep_rows
from repro.experiments.fig12_power_total import group2_case_study
from repro.experiments.runner import main as runner_main
from repro.parallel import sweep_map

JOBS = [1, 2, 4]


def _seeded_draw(x, *, seed):
    rng = np.random.default_rng(seed)
    return (x, float(rng.random()), int(rng.integers(0, 1 << 30)))


def _analytic(x):
    return x**0.5 + 1.0 / (x + 1.0)


class TestEngineDeterminism:
    @pytest.mark.parametrize("jobs", JOBS)
    def test_seeded_grid_matches_serial(self, jobs):
        grid = list(range(17))
        serial = sweep_map(_seeded_draw, grid, jobs=1, base_seed=2009)
        assert sweep_map(_seeded_draw, grid, jobs=jobs, base_seed=2009) == serial

    @pytest.mark.parametrize("jobs", JOBS)
    def test_unseeded_grid_matches_serial(self, jobs):
        grid = [float(x) for x in range(23)]
        serial = sweep_map(_analytic, grid, jobs=1)
        assert sweep_map(_analytic, grid, jobs=jobs) == serial

    @pytest.mark.parametrize("chunk_size", [1, 2, 5, 17])
    def test_chunk_size_never_changes_results(self, chunk_size):
        # Re-chunking moves tasks between workers; seeds must not notice.
        serial = sweep_map(_seeded_draw, range(17), base_seed=7)
        parallel = sweep_map(
            _seeded_draw, range(17), jobs=2, chunk_size=chunk_size, base_seed=7
        )
        assert parallel == serial


class TestHelperDeterminism:
    """Sweep-heavy experiment helpers at test-sized horizons."""

    @pytest.mark.parametrize("jobs", [2, 4])
    def test_consolidation_sweep(self, jobs):
        serial = consolidation_sweep_rows(
            GROUP1, (GROUP1.expected_consolidated,), 40.0, 2009, jobs=1
        )
        parallel = consolidation_sweep_rows(
            GROUP1, (GROUP1.expected_consolidated,), 40.0, 2009, jobs=jobs
        )
        assert parallel == serial

    @pytest.mark.parametrize("jobs", [2, 4])
    def test_group2_power_case_study(self, jobs):
        serial = group2_case_study(2009, True, jobs=1)
        parallel = group2_case_study(2009, True, jobs=jobs)
        assert parallel.dedicated == serial.dedicated
        assert parallel.consolidated == serial.consolidated


class TestExperimentDeterminism:
    @pytest.mark.parametrize("jobs", [2, 4])
    def test_analytic_experiment(self, jobs):
        serial = ext_scale.run(seed=5, fast=True, jobs=1)
        parallel = ext_scale.run(seed=5, fast=True, jobs=jobs)
        assert parallel.rows == serial.rows
        assert parallel.summary == serial.summary
        assert parallel.text == serial.text

    def test_fig10_jobs2_matches_serial(self):
        # One full DES experiment through its registered entry point: the
        # moderately-priced integration check of the whole contract.
        from repro.experiments.fig10_group1 import run as fig10

        serial = fig10(seed=2009, fast=True, jobs=1)
        parallel = fig10(seed=2009, fast=True, jobs=2)
        assert parallel.rows == serial.rows
        assert parallel.summary == serial.summary


class TestCliDeterminism:
    @pytest.mark.parametrize("jobs", [2, 4])
    def test_stdout_identical_across_jobs(self, capsys, jobs):
        # Cheap analytic experiments keep the runner-level check fast; the
        # parallel path fans out *across* experiments here.
        names = ["table1", "fig2", "ext-scale"]
        assert runner_main([*names, "--jobs", "1"]) == 0
        serial_out = capsys.readouterr().out
        assert runner_main([*names, "--jobs", str(jobs)]) == 0
        assert capsys.readouterr().out == serial_out
