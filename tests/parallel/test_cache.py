"""Cache-equivalence properties: memoization may change timing, never numbers."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs import MetricsRegistry
from repro.parallel.cache import (
    ErlangCache,
    configure_shared_cache,
    record_cache_metrics,
    shared_cache,
)
from repro.queueing import erlang

# Loads/targets spanning the paper's operating range; values are drawn on
# the cache's rounding grid so cached and uncached calls see identical
# floats (off-grid inputs are covered by the tolerance test below).
loads = st.decimals(
    min_value="0.001", max_value="500.0", places=6
).map(float)
targets = st.decimals(
    min_value="0.0001", max_value="0.5", places=6
).map(float)


class TestCachedEqualsUncached:
    @given(rho=loads, target=targets)
    @settings(max_examples=60, deadline=None)
    def test_min_servers(self, rho, target):
        cache = ErlangCache()
        expected = erlang.min_servers(rho, target)
        assert cache.min_servers(rho, target) == expected  # miss
        assert cache.min_servers(rho, target) == expected  # hit
        assert cache.stats()["hits"] == 1

    @given(rho=loads, target=targets)
    @settings(max_examples=40, deadline=None)
    def test_min_servers_continuous(self, rho, target):
        cache = ErlangCache()
        expected = erlang.min_servers_continuous(rho, target)
        assert cache.min_servers_continuous(rho, target) == expected
        assert cache.min_servers_continuous(rho, target) == expected

    @given(n=st.integers(min_value=0, max_value=400), rho=loads)
    @settings(max_examples=60, deadline=None)
    def test_erlang_b(self, n, rho):
        cache = ErlangCache()
        expected = erlang.erlang_b(n, rho)
        assert cache.erlang_b(n, rho) == expected
        assert cache.erlang_b(n, rho) == expected

    def test_sweep_of_repeated_loads_stays_exact(self):
        # A dense sweep with heavy key reuse: every return must equal the
        # uncached solver's, and the reuse must show up as hits.
        cache = ErlangCache()
        grid = [(round(0.5 + 0.25 * (i % 40), 3), 0.01) for i in range(200)]
        for rho, target in grid:
            assert cache.min_servers(rho, target) == erlang.min_servers(rho, target)
        stats = cache.stats()
        assert stats["misses"] == 40
        assert stats["hits"] == 160


class TestKeyTolerance:
    def test_inputs_within_rounding_share_an_entry(self):
        cache = ErlangCache()
        base = 12.345678900
        nudged = base + 1e-11  # below RHO_DECIMALS resolution
        assert cache.key_for("min_servers", base, 0.01) == cache.key_for(
            "min_servers", nudged, 0.01
        )
        first = cache.min_servers(base, 0.01)
        assert cache.min_servers(nudged, 0.01) == first
        assert cache.stats()["hits"] == 1
        # The shared entry cannot return anything outside the rounding
        # tolerance: both inputs invert to the same fleet size anyway.
        assert erlang.min_servers(nudged, 0.01) == first

    def test_inputs_beyond_rounding_do_not_collide(self):
        cache = ErlangCache()
        assert cache.key_for("min_servers", 10.0, 0.01) != cache.key_for(
            "min_servers", 10.0 + 1e-8, 0.01
        )

    def test_distinct_qos_classes_stay_apart(self):
        cache = ErlangCache()
        keys = {cache.key_for("min_servers", 50.0, t) for t in (1e-2, 1e-3, 1e-4)}
        assert len(keys) == 3

    def test_kinds_do_not_collide(self):
        cache = ErlangCache()
        assert cache.min_servers(30.0, 0.01) >= cache.min_servers_continuous(
            30.0, 0.01
        ) - 1
        assert cache.stats()["misses"] == 2  # separate entries per solver

    def test_erlang_b_key_includes_server_count(self):
        cache = ErlangCache()
        assert cache.erlang_b(10, 8.0) != cache.erlang_b(12, 8.0)
        assert cache.stats()["misses"] == 2


class TestEviction:
    def test_bound_is_enforced(self):
        cache = ErlangCache(maxsize=8)
        for i in range(50):
            cache.min_servers(1.0 + i, 0.01)
        stats = cache.stats()
        assert len(cache) <= 8
        assert stats["evictions"] == 50 - 8

    def test_results_survive_eviction_pressure(self):
        # A tiny cache thrashing through a cycling workload must still
        # return exactly what the uncached solver returns, every call.
        cache = ErlangCache(maxsize=4)
        grid = [1.0 + (i % 10) for i in range(80)]
        for rho in grid:
            assert cache.min_servers(rho, 0.02) == erlang.min_servers(rho, 0.02)
        assert cache.stats()["evictions"] > 0

    def test_lru_order(self):
        cache = ErlangCache(maxsize=2)
        cache.min_servers(1.0, 0.01)
        cache.min_servers(2.0, 0.01)
        cache.min_servers(1.0, 0.01)  # refresh 1.0
        cache.min_servers(3.0, 0.01)  # evicts 2.0, not 1.0
        cache.min_servers(1.0, 0.01)
        assert cache.stats()["hits"] == 2

    def test_rejects_nonpositive_maxsize(self):
        with pytest.raises(ValueError, match="positive"):
            ErlangCache(maxsize=0)


class TestSharedCacheAndMetrics:
    def test_configure_replaces_shared_instance(self):
        original = shared_cache()
        try:
            replaced = configure_shared_cache(maxsize=16)
            assert shared_cache() is replaced
            assert replaced.maxsize == 16
        finally:
            configure_shared_cache(maxsize=original.maxsize)

    def test_record_cache_metrics_scopes_to_baseline(self):
        original = shared_cache()
        try:
            cache = configure_shared_cache(maxsize=64)
            cache.min_servers(5.0, 0.01)
            baseline = cache.stats()
            cache.min_servers(5.0, 0.01)  # 1 hit after baseline
            cache.min_servers(6.0, 0.01)  # 1 miss after baseline
            registry = MetricsRegistry("test")
            record_cache_metrics(registry, baseline)
            snap = registry.snapshot()
            assert snap["erlang_cache_hits_total"]["series"] == [
                {"labels": {"origin": "parent"}, "value": 1.0}
            ]
            assert snap["erlang_cache_misses_total"]["series"] == [
                {"labels": {"origin": "parent"}, "value": 1.0}
            ]
            assert snap["erlang_cache_size"]["series"][0]["value"] == 2.0
        finally:
            configure_shared_cache(maxsize=original.maxsize)

    def test_record_cache_metrics_noop_when_disabled(self):
        class Disabled:
            enabled = False

        record_cache_metrics(Disabled())  # must not raise or record

    def test_clear_resets_everything(self):
        cache = ErlangCache()
        cache.min_servers(3.0, 0.01)
        cache.clear()
        assert len(cache) == 0
        assert cache.stats() == {
            "hits": 0, "misses": 0, "evictions": 0, "size": 0, "maxsize": 65536,
        }

    def test_nan_load_rejected_through_cache(self):
        # Validation bugs must not hide behind memoization.
        cache = ErlangCache()
        with pytest.raises(ValueError, match="finite"):
            cache.min_servers(math.nan, 0.01)
