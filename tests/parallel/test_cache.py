"""Cache-equivalence properties: memoization may change timing, never numbers."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs import MetricsRegistry
from repro.parallel.cache import (
    ErlangCache,
    configure_shared_cache,
    record_cache_metrics,
    shared_cache,
)
from repro.queueing import erlang

# Loads/targets spanning the paper's operating range; values are drawn on
# the cache's rounding grid so cached and uncached calls see identical
# floats (off-grid inputs are covered by the tolerance test below).
loads = st.decimals(
    min_value="0.001", max_value="500.0", places=6
).map(float)
targets = st.decimals(
    min_value="0.0001", max_value="0.5", places=6
).map(float)


class TestCachedEqualsUncached:
    @given(rho=loads, target=targets)
    @settings(max_examples=60, deadline=None)
    def test_min_servers(self, rho, target):
        cache = ErlangCache()
        expected = erlang.min_servers(rho, target)
        assert cache.min_servers(rho, target) == expected  # miss
        assert cache.min_servers(rho, target) == expected  # hit
        assert cache.stats()["hits"] == 1

    @given(rho=loads, target=targets)
    @settings(max_examples=40, deadline=None)
    def test_min_servers_continuous(self, rho, target):
        cache = ErlangCache()
        expected = erlang.min_servers_continuous(rho, target)
        assert cache.min_servers_continuous(rho, target) == expected
        assert cache.min_servers_continuous(rho, target) == expected

    @given(n=st.integers(min_value=0, max_value=400), rho=loads)
    @settings(max_examples=60, deadline=None)
    def test_erlang_b(self, n, rho):
        cache = ErlangCache()
        expected = erlang.erlang_b(n, rho)
        assert cache.erlang_b(n, rho) == expected
        assert cache.erlang_b(n, rho) == expected

    def test_sweep_of_repeated_loads_stays_exact(self):
        # A dense sweep with heavy key reuse: every return must equal the
        # uncached solver's, and the reuse must show up as hits.
        cache = ErlangCache()
        grid = [(round(0.5 + 0.25 * (i % 40), 3), 0.01) for i in range(200)]
        for rho, target in grid:
            assert cache.min_servers(rho, target) == erlang.min_servers(rho, target)
        stats = cache.stats()
        assert stats["misses"] == 40
        assert stats["hits"] == 160


class TestKeyTolerance:
    def test_inputs_within_rounding_share_an_entry(self):
        cache = ErlangCache()
        base = 12.345678900
        nudged = base + 1e-11  # below RHO_DECIMALS resolution
        assert cache.key_for("min_servers", base, 0.01) == cache.key_for(
            "min_servers", nudged, 0.01
        )
        first = cache.min_servers(base, 0.01)
        assert cache.min_servers(nudged, 0.01) == first
        assert cache.stats()["hits"] == 1
        # The shared entry cannot return anything outside the rounding
        # tolerance: both inputs invert to the same fleet size anyway.
        assert erlang.min_servers(nudged, 0.01) == first

    def test_inputs_beyond_rounding_do_not_collide(self):
        cache = ErlangCache()
        assert cache.key_for("min_servers", 10.0, 0.01) != cache.key_for(
            "min_servers", 10.0 + 1e-8, 0.01
        )

    def test_distinct_qos_classes_stay_apart(self):
        cache = ErlangCache()
        keys = {cache.key_for("min_servers", 50.0, t) for t in (1e-2, 1e-3, 1e-4)}
        assert len(keys) == 3

    def test_kinds_do_not_collide(self):
        cache = ErlangCache()
        assert cache.min_servers(30.0, 0.01) >= cache.min_servers_continuous(
            30.0, 0.01
        ) - 1
        assert cache.stats()["misses"] == 2  # separate entries per solver

    def test_erlang_b_key_includes_server_count(self):
        cache = ErlangCache()
        assert cache.erlang_b(10, 8.0) != cache.erlang_b(12, 8.0)
        assert cache.stats()["misses"] == 2

    def test_precision_is_constructor_configurable(self):
        coarse = ErlangCache(rho_decimals=3, target_decimals=4)
        assert coarse.key_for("min_servers", 1.23456, 0.012345) == (
            "min_servers", 1.235, 0.0123,
        )
        stats = coarse.stats()
        assert stats["rho_decimals"] == 3
        assert stats["target_decimals"] == 4
        # Defaults still come from the class attributes.
        default = ErlangCache()
        assert default.rho_decimals == ErlangCache.RHO_DECIMALS
        assert default.target_decimals == ErlangCache.TARGET_DECIMALS
        with pytest.raises(ValueError, match="rho_decimals"):
            ErlangCache(rho_decimals=-1)
        with pytest.raises(ValueError, match="target_decimals"):
            ErlangCache(target_decimals=-2)

    @given(rho=st.floats(min_value=0.001, max_value=500.0,
                         allow_nan=False, allow_infinity=False),
           target=st.floats(min_value=0.0001, max_value=0.5,
                            allow_nan=False, allow_infinity=False))
    @settings(max_examples=80, deadline=None)
    def test_cache_on_vs_off_agrees_within_rounding_tolerance(self, rho, target):
        # Off-grid inputs may share an entry with their rounded neighbour;
        # the cached answer must equal the uncached answer of SOME input
        # within the rounding tolerance — concretely, the rounded key
        # point — and min_servers moves by at most one server across a
        # 1e-9 load perturbation at these scales.
        cache = ErlangCache()
        # Prime with the rounded key point so the off-grid query below
        # exercises the collision path (a shared entry), not a fresh miss.
        rho_key = round(rho, cache.rho_decimals)
        target_key = round(target, cache.target_decimals)
        cache.min_servers(rho_key, target_key)
        cached = cache.min_servers(rho, target)
        uncached = erlang.min_servers(rho, target)
        at_key = erlang.min_servers(rho_key, target_key)
        assert cached == uncached or cached == at_key
        assert abs(cached - uncached) <= 1


class TestEviction:
    def test_bound_is_enforced(self):
        cache = ErlangCache(maxsize=8)
        for i in range(50):
            cache.min_servers(1.0 + i, 0.01)
        stats = cache.stats()
        assert len(cache) <= 8
        assert stats["evictions"] == 50 - 8

    def test_results_survive_eviction_pressure(self):
        # A tiny cache thrashing through a cycling workload must still
        # return exactly what the uncached solver returns, every call.
        cache = ErlangCache(maxsize=4)
        grid = [1.0 + (i % 10) for i in range(80)]
        for rho in grid:
            assert cache.min_servers(rho, 0.02) == erlang.min_servers(rho, 0.02)
        assert cache.stats()["evictions"] > 0

    def test_lru_order(self):
        cache = ErlangCache(maxsize=2)
        cache.min_servers(1.0, 0.01)
        cache.min_servers(2.0, 0.01)
        cache.min_servers(1.0, 0.01)  # refresh 1.0
        cache.min_servers(3.0, 0.01)  # evicts 2.0, not 1.0
        cache.min_servers(1.0, 0.01)
        assert cache.stats()["hits"] == 2

    def test_rejects_nonpositive_maxsize(self):
        with pytest.raises(ValueError, match="positive"):
            ErlangCache(maxsize=0)


class TestSharedCacheAndMetrics:
    def test_configure_replaces_shared_instance(self):
        original = shared_cache()
        try:
            replaced = configure_shared_cache(maxsize=16)
            assert shared_cache() is replaced
            assert replaced.maxsize == 16
        finally:
            configure_shared_cache(maxsize=original.maxsize)

    def test_record_cache_metrics_scopes_to_baseline(self):
        original = shared_cache()
        try:
            cache = configure_shared_cache(maxsize=64)
            cache.min_servers(5.0, 0.01)
            baseline = cache.stats()
            cache.min_servers(5.0, 0.01)  # 1 hit after baseline
            cache.min_servers(6.0, 0.01)  # 1 miss after baseline
            registry = MetricsRegistry("test")
            record_cache_metrics(registry, baseline)
            snap = registry.snapshot()
            assert snap["erlang_cache_hits_total"]["series"] == [
                {"labels": {"origin": "parent"}, "value": 1.0}
            ]
            assert snap["erlang_cache_misses_total"]["series"] == [
                {"labels": {"origin": "parent"}, "value": 1.0}
            ]
            assert snap["erlang_cache_size"]["series"][0]["value"] == 2.0
        finally:
            configure_shared_cache(maxsize=original.maxsize)

    def test_record_cache_metrics_noop_when_disabled(self):
        class Disabled:
            enabled = False

        record_cache_metrics(Disabled())  # must not raise or record

    def test_clear_resets_everything(self):
        cache = ErlangCache()
        cache.min_servers(3.0, 0.01)
        cache.clear()
        assert len(cache) == 0
        assert cache.stats() == {
            "hits": 0, "misses": 0, "evictions": 0, "size": 0, "maxsize": 65536,
            "rho_decimals": 9, "target_decimals": 12,
        }

    def test_nan_load_rejected_through_cache(self):
        # Validation bugs must not hide behind memoization.
        cache = ErlangCache()
        with pytest.raises(ValueError, match="finite"):
            cache.min_servers(math.nan, 0.01)


class TestMinServersGrid:
    def test_matches_scalar_path_and_counts_per_point(self):
        cache = ErlangCache()
        rhos = [0.5 + 0.25 * i for i in range(40)]
        expected = [erlang.min_servers(rho, 0.01) for rho in rhos]
        got = cache.min_servers_grid(rhos, 0.01)
        assert got.tolist() == expected
        assert cache.stats()["misses"] == 40
        # Second pass: all hits, same values.
        again = cache.min_servers_grid(rhos, 0.01)
        assert again.tolist() == expected
        assert cache.stats()["hits"] == 40

    def test_grid_and_scalar_calls_share_entries(self):
        cache = ErlangCache()
        scalar = cache.min_servers(12.5, 0.02)
        got = cache.min_servers_grid([12.5, 30.0], 0.02)
        assert got[0] == scalar
        stats = cache.stats()
        assert stats["hits"] == 1 and stats["misses"] == 2

    def test_broadcasts_and_preserves_shape(self):
        import numpy as np

        cache = ErlangCache()
        rho = np.linspace(1.0, 20.0, 6).reshape(3, 2)
        out = cache.min_servers_grid(rho, 0.01)
        assert out.shape == (3, 2)
        flat = [erlang.min_servers(float(r), 0.01) for r in rho.reshape(-1)]
        assert out.reshape(-1).tolist() == flat

    def test_eviction_bound_holds_for_batches(self):
        cache = ErlangCache(maxsize=8)
        cache.min_servers_grid([1.0 + i for i in range(30)], 0.01)
        assert len(cache) <= 8
        assert cache.stats()["evictions"] == 30 - 8
