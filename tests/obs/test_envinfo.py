"""Shared provenance helpers: one fingerprint schema for every artifact."""

import json

from repro.obs import (
    FINGERPRINT_KEYS,
    Expectation,
    Scoreboard,
    append_only_artifact_path,
    build_artifact,
    build_fidelity_artifact,
    build_manifest,
    check_expectations,
    detect_git_sha,
    environment_fingerprint,
)
from repro.obs.bench import BenchResult


class TestEnvironmentFingerprint:
    def test_exact_key_schema(self):
        assert tuple(environment_fingerprint()) == FINGERPRINT_KEYS

    def test_carries_git_sha(self):
        fp = environment_fingerprint()
        assert fp["git_sha"] == detect_git_sha()

    def test_json_serialisable(self):
        json.dumps(environment_fingerprint())

    def test_identical_schema_across_artifact_families(self):
        # BENCH, FIDELITY, and the run manifest must agree on the
        # fingerprint schema so cross-artifact joins are dict comparisons.
        manifest = build_manifest({"tool": "test"})
        bench = build_artifact(
            [
                BenchResult(
                    name="b", group="g", source="t", wall_s=[0.1, 0.1], cpu_s=[0.1, 0.1]
                )
            ],
            warmup=0,
            repeats=2,
            git_sha="x",
        )
        scoreboard = Scoreboard(
            verdicts=tuple(check_expectations("e", {"m": 1}, [Expectation("m", 1)]))
        )
        fid = build_fidelity_artifact(scoreboard, git_sha="x")
        fingerprints = [manifest["environment"], bench["environment"], fid["environment"]]
        assert all(tuple(fp) == FINGERPRINT_KEYS for fp in fingerprints)
        assert fingerprints[0] == fingerprints[1] == fingerprints[2]


class TestDetectGitSha:
    def test_short_hex_in_this_repo(self):
        sha = detect_git_sha()
        assert sha == "nogit" or (
            len(sha) >= 10 and all(c in "0123456789abcdef" for c in sha)
        )

    def test_cached_per_process(self):
        assert detect_git_sha() is detect_git_sha()


class TestAppendOnlyArtifactPath:
    def test_creates_directory_and_first_path(self, tmp_path):
        path = append_only_artifact_path(tmp_path / "sub", "FIDELITY_x")
        assert path == tmp_path / "sub" / "FIDELITY_x.json"
        assert path.parent.is_dir()

    def test_serials_instead_of_overwriting(self, tmp_path):
        first = append_only_artifact_path(tmp_path, "STEM")
        first.write_text("{}")
        second = append_only_artifact_path(tmp_path, "STEM")
        second.write_text("{}")
        third = append_only_artifact_path(tmp_path, "STEM")
        assert first.name == "STEM.json"
        assert second.name == "STEM_2.json"
        assert third.name == "STEM_3.json"

    def test_custom_suffix(self, tmp_path):
        path = append_only_artifact_path(tmp_path, "S", suffix=".html")
        assert path.name == "S.html"
