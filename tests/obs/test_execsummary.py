"""Executive dashboard renderer and the repro-fleet CLI."""

import json

from repro.obs import build_manifest
from repro.obs.execsummary import build_and_render, main, render_fleet_dashboard
from repro.obs.fleet import (
    AuditAssumptions,
    load_fleet_artifact,
    validate_fleet_artifact,
)
from repro.obs.ledger import build_ledger

FIG12 = {
    "dedicated_servers": 8,
    "consolidated_servers": 4,
    "dedicated_mean_power_W": 2000.0,
    "consolidated_mean_power_W": 1000.0,
}


def _populate(d, *, with_bench=True):
    d.mkdir(parents=True, exist_ok=True)
    (d / "run_manifest.json").write_text(
        json.dumps(build_manifest({"tool": "t"}, seed=2009))
    )
    for exp, summary in {
        "fig12": FIG12,
        "fig11": {"consolidated_cpu_util": 0.343},
        "table1": {"group2_N": 4},
    }.items():
        (d / f"{exp}.json").write_text(
            json.dumps(
                {"experiment": exp, "title": exp, "summary": summary, "rows": 1}
            )
        )
    if with_bench:
        for day, median in (("01", 0.010), ("02", 0.008)):
            (d / f"BENCH_202608{day}_abc.json").write_text(
                json.dumps(
                    {
                        "schema": "repro.bench/v1",
                        "created_utc": f"2026-08-{day}T00:00:00+00:00",
                        "git_sha": "abc",
                        "model_version": "1.0.0",
                        "environment": {"python": "3"},
                        "inputs_hash": "0" * 64,
                        "config": {"warmup": 0, "repeats": 2},
                        "benchmarks": [
                            {
                                "name": "bench-a",
                                "group": "g",
                                "source": "t",
                                "ok": True,
                                "repeats": 2,
                                "wall_s": {"median": median},
                                "cpu_s": {"median": median},
                            }
                        ],
                    }
                )
            )
    return d


def _render(tmp_path):
    ledger = build_ledger([_populate(tmp_path / "results")])
    return build_and_render(
        ledger,
        AuditAssumptions(),
        git_sha="abc123",
        created_utc="2026-08-08T00:00:00+00:00",
    )


class TestRenderer:
    def test_sections_present(self, tmp_path):
        artifact, html = _render(tmp_path)
        for heading in (
            "Executive summary",
            "Audit assumptions",
            "Fidelity verdict grid",
            "Performance trajectory",
            "Run ledger",
        ):
            assert heading in html
        assert "Consolidate" in html
        assert "electricity price ($/kWh)" in html

    def test_dashboard_is_self_contained(self, tmp_path):
        _, html = _render(tmp_path)
        assert html.startswith("<!DOCTYPE html>")
        assert "<script" not in html
        assert "http://" not in html
        assert "https://" not in html
        assert "<link" not in html
        assert 'src="' not in html  # no external images

    def test_bench_sparkline_rendered_inline(self, tmp_path):
        _, html = _render(tmp_path)
        assert "<svg" in html and "polyline" in html
        assert "bench-a" in html
        assert "-20.0%" in html  # 8 ms vs 10 ms first point

    def test_no_bench_artifacts_degrades(self, tmp_path):
        ledger = build_ledger(
            [_populate(tmp_path / "results", with_bench=False)]
        )
        _, html = build_and_render(ledger, git_sha="x")
        assert "No BENCH_*.json artifacts" in html

    def test_renders_excluded_and_skipped(self, tmp_path):
        d = _populate(tmp_path / "results")
        (d / "broken.json").write_text("{ nope")
        ledger = build_ledger([d])
        _, html = build_and_render(ledger, git_sha="x")
        assert "skipped during discovery" in html
        assert "truncated or invalid JSON" in html

    def test_render_direct_from_loaded_artifact(self, tmp_path):
        artifact, _ = _render(tmp_path)
        html = render_fleet_dashboard(artifact, title="custom title")
        assert "custom title" in html
        assert "runs hash" in html


class TestFleetCli:
    def test_end_to_end(self, tmp_path, capsys):
        _populate(tmp_path / "results")
        out = tmp_path / "fleet.html"
        rc = main(["--scan", str(tmp_path / "results"), "--out", str(out)])
        assert rc == 0
        html = out.read_text()
        assert "<script" not in html and "http" + "://" not in html
        captured = capsys.readouterr()
        assert "fleet dashboard:" in captured.out
        assert "fleet artifact:" in captured.out
        fleet_jsons = list(out.parent.glob("FLEET_*.json"))
        assert len(fleet_jsons) == 1
        doc = load_fleet_artifact(fleet_jsons[0])
        validate_fleet_artifact(doc)
        assert doc["decision"]["recommendation"] == "consolidated"

    def test_custom_assumptions_flow_into_artifact(self, tmp_path):
        _populate(tmp_path / "results")
        out = tmp_path / "fleet.html"
        rc = main(
            [
                "--scan", str(tmp_path / "results"),
                "--out", str(out),
                "--price-usd-per-kwh", "0.30",
                "--carbon-g-per-kwh", "50",
            ]
        )
        assert rc == 0
        (fleet_json,) = out.parent.glob("FLEET_*.json")
        doc = load_fleet_artifact(fleet_json)
        assert doc["assumptions"]["price_usd_per_kwh"] == 0.30
        assert doc["assumptions"]["carbon_g_per_kwh"] == 50.0

    def test_artifact_dir_empty_string_skips_json(self, tmp_path, capsys):
        _populate(tmp_path / "results")
        out = tmp_path / "fleet.html"
        rc = main(
            ["--scan", str(tmp_path / "results"), "--out", str(out),
             "--artifact-dir", ""]
        )
        assert rc == 0
        assert not list(out.parent.glob("FLEET_*.json"))
        assert "fleet artifact:" not in capsys.readouterr().out

    def test_empty_directory_one_line_error(self, tmp_path, capsys):
        empty = tmp_path / "nothing"
        empty.mkdir()
        rc = main(
            ["--scan", str(empty), "--out", str(tmp_path / "fleet.html")]
        )
        assert rc == 2
        err = capsys.readouterr().err
        assert err.startswith("error: no run artifacts under")
        assert "repro-experiments" in err
        assert "Traceback" not in err
        assert not (tmp_path / "fleet.html").exists()

    def test_invalid_assumption_one_line_error(self, tmp_path, capsys):
        rc = main(["--price-usd-per-kwh", "-1", "--out", str(tmp_path / "f.html")])
        assert rc == 2
        assert "must be non-negative" in capsys.readouterr().err
