"""Unit tests for the virtual-time telemetry bus."""

import json

import pytest

from repro.obs.timeseries import (
    TIMESERIES_SCHEMA,
    CounterSeries,
    GaugeSeries,
    NullTelemetryBus,
    TelemetryBus,
    get_bus,
    load_timeseries_jsonl,
    scoped_bus,
    set_bus,
    validate_timeseries_doc,
    write_timeseries_jsonl,
)


class TestCounterSeries:
    def test_bucketing(self):
        s = CounterSeries("arrivals", (), 1.0, 64)
        s.add(0.2)
        s.add(0.9)
        s.add(2.5, amount=3.0)
        assert s.values() == [2.0, 0.0, 3.0]
        assert s.total == 5.0

    def test_out_of_order_times_allowed(self):
        # Counters have no level to integrate, so late samples just land
        # in their (earlier) bucket.
        s = CounterSeries("x", (), 1.0, 64)
        s.add(5.5)
        s.add(1.5)
        assert s.values()[1] == 1.0
        assert s.values()[5] == 1.0

    def test_negative_time_rejected(self):
        s = CounterSeries("x", (), 1.0, 64)
        with pytest.raises(ValueError, match="non-negative"):
            s.add(-0.5)

    def test_decimation_preserves_total(self):
        s = CounterSeries("x", (), 1.0, 4)
        for t in range(10):
            s.add(t + 0.5, amount=2.0)
        assert s.total == 20.0
        assert s.buckets <= 4
        assert s.decimations >= 1
        # Width doubled once per decimation.
        assert s.bucket_width == 2.0**s.decimations

    def test_decimation_merges_adjacent_pairs(self):
        s = CounterSeries("x", (), 1.0, 4)
        s.add(0.5, 1.0)
        s.add(1.5, 2.0)
        s.add(2.5, 4.0)
        s.add(3.5, 8.0)
        s.add(4.5, 16.0)  # forces one decimation
        assert s.bucket_width == 2.0
        assert s.values() == [3.0, 12.0, 16.0]

    def test_validation(self):
        with pytest.raises(ValueError):
            CounterSeries("", (), 1.0, 8)
        with pytest.raises(ValueError):
            CounterSeries("x", (), 0.0, 8)
        with pytest.raises(ValueError):
            CounterSeries("x", (), 1.0, 1)


class TestGaugeSeries:
    def test_constant_level_mean(self):
        g = GaugeSeries("occ", (), 1.0, 64)
        g.set(0.0, 3.0)
        g.finalize(4.0)
        assert g.values() == [3.0, 3.0, 3.0, 3.0]

    def test_piecewise_level_integration(self):
        g = GaugeSeries("occ", (), 1.0, 64)
        g.set(0.0, 2.0)
        g.set(0.5, 4.0)  # bucket 0: 0.5*2 + 0.5*4 = 3.0 mean
        g.finalize(1.0)
        assert g.values()[0] == pytest.approx(3.0)

    def test_partial_trailing_bucket_not_diluted(self):
        g = GaugeSeries("occ", (), 1.0, 64)
        g.set(0.0, 6.0)
        g.finalize(1.5)  # half of bucket 1 covered at level 6
        assert g.values() == [6.0, 6.0]

    def test_zero_level_spans_horizon(self):
        g = GaugeSeries("occ", (), 1.0, 64)
        g.finalize(3.0)
        assert g.values() == [0.0, 0.0, 0.0]

    def test_time_backwards_rejected(self):
        g = GaugeSeries("occ", (), 1.0, 64)
        g.set(2.0, 1.0)
        with pytest.raises(ValueError, match="backwards"):
            g.set(1.0, 2.0)

    def test_level_spanning_many_buckets(self):
        g = GaugeSeries("occ", (), 1.0, 64)
        g.set(0.0, 5.0)
        g.set(3.5, 0.0)
        g.finalize(5.0)
        vals = g.values()
        assert vals[:3] == [5.0, 5.0, 5.0]
        assert vals[3] == pytest.approx(2.5)  # half covered at 5, half at 0
        assert vals[4] == 0.0

    def test_decimation_keeps_time_weighted_mean(self):
        g = GaugeSeries("occ", (), 1.0, 4)
        g.set(0.0, 2.0)
        g.finalize(8.0)  # needs 8 buckets -> decimates to width 2
        assert g.bucket_width == 2.0
        for v in g.values():
            assert v == pytest.approx(2.0)

    def test_current_tracks_level(self):
        g = GaugeSeries("occ", (), 1.0, 64)
        assert g.current == 0.0
        g.set(1.0, 7.5)
        assert g.current == 7.5


class TestTelemetryBus:
    def test_get_or_create_by_name_and_labels(self):
        bus = TelemetryBus()
        a = bus.counter("c", {"pool": "x"})
        b = bus.counter("c", {"pool": "x"})
        c = bus.counter("c", {"pool": "y"})
        assert a is b
        assert a is not c
        assert len(bus) == 2

    def test_agg_kind_conflict_rejected(self):
        bus = TelemetryBus()
        bus.counter("m")
        with pytest.raises(ValueError, match="already registered"):
            bus.gauge("m")

    def test_series_sorted_for_export(self):
        bus = TelemetryBus()
        bus.counter("b")
        bus.counter("a", {"k": "2"})
        bus.counter("a", {"k": "1"})
        keys = [(s.name, s.labels) for s in bus.series()]
        assert keys == sorted(keys)

    def test_clock_follows_simulator(self):
        class FakeSim:
            now = 12.5

        bus = TelemetryBus()
        assert bus.now == 0.0
        bus.attach_simulator(FakeSim())
        assert bus.now == 12.5
        bus.detach_clock()
        assert bus.now == 0.0

    def test_finalize_closes_all_gauges(self):
        bus = TelemetryBus()
        g1 = bus.gauge("g1")
        g2 = bus.gauge("g2")
        g1.set(0.0, 1.0)
        g2.set(0.0, 2.0)
        bus.finalize(2.0)
        assert g1.values() == [1.0, 1.0]
        assert g2.values() == [2.0, 2.0]

    def test_to_docs_validates(self):
        bus = TelemetryBus()
        bus.counter("c", {"pool": "p"}).add(0.5)
        for doc in bus.to_docs():
            validate_timeseries_doc(doc)

    def test_jsonl_round_trip(self, tmp_path):
        bus = TelemetryBus()
        bus.counter("c").add(1.5, 2.0)
        g = bus.gauge("g", {"pool": "p"})
        g.set(0.0, 3.0)
        bus.finalize(2.0)
        path = write_timeseries_jsonl(bus.to_docs(), tmp_path / "ts.jsonl")
        series, alarms = load_timeseries_jsonl(path)
        assert alarms == []
        assert [d["series"] for d in series] == ["c", "g"]
        assert series[1]["values"] == [3.0, 3.0]

    def test_validation(self):
        with pytest.raises(ValueError):
            TelemetryBus(bucket_width=0.0)
        with pytest.raises(ValueError):
            TelemetryBus(max_buckets=1)


class TestGlobalBinding:
    def test_default_is_null(self):
        assert isinstance(get_bus(), NullTelemetryBus)
        assert not get_bus().enabled

    def test_null_bus_is_inert(self):
        bus = NullTelemetryBus()
        series = bus.counter("x", {"a": "b"})
        series.add(1.0)
        series.set(1.0, 2.0)
        assert series.values() == []
        assert bus.to_docs() == []
        assert bus.to_jsonl() == ""
        assert len(bus) == 0

    def test_scoped_bus_installs_and_restores(self):
        before = get_bus()
        with scoped_bus() as bus:
            assert get_bus() is bus
            assert bus.enabled
        assert get_bus() is before

    def test_set_bus_none_restores_null(self):
        previous = set_bus(TelemetryBus())
        try:
            assert get_bus().enabled
        finally:
            set_bus(None)
            assert not get_bus().enabled
            set_bus(previous)


class TestSchemaValidation:
    def good_series(self):
        return {
            "schema": TIMESERIES_SCHEMA,
            "kind": "series",
            "series": "c",
            "labels": {},
            "agg": "counter",
            "t0": 0.0,
            "bucket_width": 1.0,
            "buckets": 1,
            "decimations": 0,
            "values": [1.0],
        }

    def good_alarm(self):
        return {
            "schema": TIMESERIES_SCHEMA,
            "kind": "alarm",
            "rule": "r",
            "alarm_kind": "overload",
            "state": "fire",
            "t": 1.0,
            "value": 2.0,
            "threshold": 1.5,
            "series": "c",
            "labels": {},
        }

    def test_good_docs_pass(self):
        validate_timeseries_doc(self.good_series())
        validate_timeseries_doc(self.good_alarm())

    @pytest.mark.parametrize("corrupt", [
        {"schema": "other/v0"},
        {"kind": "mystery"},
        {"agg": "histogram"},
        {"buckets": 5},
        {"bucket_width": -1.0},
        {"values": "nope"},
    ])
    def test_bad_series_rejected(self, corrupt):
        doc = {**self.good_series(), **corrupt}
        with pytest.raises(ValueError):
            validate_timeseries_doc(doc)

    @pytest.mark.parametrize("corrupt", [
        {"state": "maybe"},
        {"t": "noon"},
        {"rule": None},
    ])
    def test_bad_alarm_rejected(self, corrupt):
        doc = {**self.good_alarm(), **corrupt}
        with pytest.raises(ValueError):
            validate_timeseries_doc(doc)

    def test_write_rejects_invalid(self, tmp_path):
        with pytest.raises(ValueError):
            write_timeseries_jsonl([{"schema": "bogus"}], tmp_path / "x.jsonl")

    def test_load_rejects_corrupt_line(self, tmp_path):
        path = tmp_path / "ts.jsonl"
        path.write_text(json.dumps(self.good_series()) + "\nnot json\n")
        with pytest.raises(ValueError, match="not JSON"):
            load_timeseries_jsonl(path)
