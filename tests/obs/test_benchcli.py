"""Tests for the ``repro-bench`` command-line front end."""

import json

import pytest

from repro.obs.benchcli import main


@pytest.fixture
def suite_dir(tmp_path):
    bench_dir = tmp_path / "benchmarks"
    bench_dir.mkdir()
    (bench_dir / "bench_quick.py").write_text(
        "import pytest\n"
        "\n"
        "@pytest.mark.benchmark(group='quick')\n"
        "def test_sum(benchmark):\n"
        "    assert benchmark(lambda: sum(range(100))) == 4950\n"
        "\n"
        "def test_sorted():\n"
        "    assert sorted([3, 1, 2]) == [1, 2, 3]\n"
    )
    return bench_dir


def _run(suite_dir, out_dir, *extra):
    code = main(
        [
            "run",
            "--bench-dir",
            str(suite_dir),
            "--out",
            str(out_dir),
            "--warmup",
            "0",
            "--repeats",
            "2",
            "--no-alloc",
            *extra,
        ]
    )
    return code


class TestRun:
    def test_writes_schema_valid_artifact(self, suite_dir, tmp_path, capsys):
        assert _run(suite_dir, tmp_path / "out") == 0
        out = capsys.readouterr().out
        assert "bench artifact:" in out
        (artifact,) = sorted((tmp_path / "out").glob("BENCH_*.json"))
        doc = json.loads(artifact.read_text())
        assert doc["schema"] == "repro.bench/v1"
        assert {e["name"] for e in doc["benchmarks"]} == {
            "bench_quick::test_sorted",
            "bench_quick::test_sum",
        }

    def test_rerun_keeps_both_artifacts(self, suite_dir, tmp_path):
        assert _run(suite_dir, tmp_path / "out") == 0
        assert _run(suite_dir, tmp_path / "out") == 0
        assert len(list((tmp_path / "out").glob("BENCH_*.json"))) == 2

    def test_select_filters(self, suite_dir, tmp_path, capsys):
        assert _run(suite_dir, tmp_path / "out", "--select", "quick") == 0
        capsys.readouterr()
        (artifact,) = (tmp_path / "out").glob("BENCH_*.json")
        doc = json.loads(artifact.read_text())
        assert [e["name"] for e in doc["benchmarks"]] == ["bench_quick::test_sum"]
        assert doc["selection"] == ["quick"]

    def test_list_runs_nothing(self, suite_dir, tmp_path, capsys):
        assert _run(suite_dir, tmp_path / "out", "--list") == 0
        out = capsys.readouterr().out
        assert "bench_quick::test_sum  [quick]" in out
        assert not (tmp_path / "out").exists()

    def test_no_match_errors(self, suite_dir, tmp_path, capsys):
        assert _run(suite_dir, tmp_path / "out", "--select", "zzz") == 2
        assert "no benchmarks match" in capsys.readouterr().err

    def test_missing_bench_dir_errors(self, tmp_path, capsys):
        assert main(["run", "--bench-dir", str(tmp_path / "nope")]) == 2
        assert "not found" in capsys.readouterr().err

    def test_failing_benchmark_reported(self, tmp_path, capsys):
        bench_dir = tmp_path / "benchmarks"
        bench_dir.mkdir()
        (bench_dir / "bench_bad.py").write_text(
            "def test_raises():\n    raise RuntimeError('kaput')\n"
        )
        assert _run(bench_dir, tmp_path / "out") == 1
        err = capsys.readouterr().err
        assert "1 benchmark(s) failed" in err
        (artifact,) = (tmp_path / "out").glob("BENCH_*.json")
        entry = json.loads(artifact.read_text())["benchmarks"][0]
        assert entry["ok"] is False
        assert "kaput" in entry["error"]

    def test_unwritable_out_dir(self, suite_dir, tmp_path, capsys):
        blocker = tmp_path / "file"
        blocker.write_text("")
        assert _run(suite_dir, blocker / "sub") == 1
        assert "cannot write bench artifact" in capsys.readouterr().err


@pytest.fixture
def two_artifacts(suite_dir, tmp_path, capsys):
    out = tmp_path / "out"
    assert _run(suite_dir, out) == 0
    assert _run(suite_dir, out) == 0
    capsys.readouterr()
    return sorted(out.glob("BENCH_*.json"))


class TestCompare:
    def test_same_commit_no_regression(self, two_artifacts, capsys):
        base, new = two_artifacts
        # Generous threshold: these micro-benches are noise-dominated.
        code = main(["compare", str(base), str(new), "--threshold", "20.0"])
        assert code == 0
        assert "verdict: no regression" in capsys.readouterr().out

    def test_fail_on_regression_exit_code(self, two_artifacts, tmp_path, capsys):
        base, _ = two_artifacts
        doc = json.loads(base.read_text())
        for entry in doc["benchmarks"]:
            entry["wall_s"]["median"] *= 100.0
        slowed = tmp_path / "slowed.json"
        slowed.write_text(json.dumps(doc))
        assert main(["compare", str(base), str(slowed)]) == 0  # report-only
        capsys.readouterr()
        code = main(["compare", str(base), str(slowed), "--fail-on-regression"])
        assert code == 1
        assert "verdict: regression" in capsys.readouterr().out

    def test_json_output(self, two_artifacts, capsys):
        base, new = two_artifacts
        assert main(["compare", str(base), str(new), "--json", "--threshold", "20"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["schema"] == "repro.bench-compare/v1"
        assert doc["verdict"] in ("regression", "no regression")

    def test_missing_artifact(self, two_artifacts, tmp_path, capsys):
        base, _ = two_artifacts
        assert main(["compare", str(base), str(tmp_path / "nope.json")]) == 2
        assert "no such bench artifact" in capsys.readouterr().err


class TestMerge:
    def test_merges_to_requested_path(self, two_artifacts, tmp_path, capsys):
        base, new = two_artifacts
        out = tmp_path / "baselines" / "BENCH_baseline.json"
        assert main(["merge", str(base), str(new), "--out", str(out)]) == 0
        assert "merged 2 artifacts" in capsys.readouterr().out
        doc = json.loads(out.read_text())
        assert doc["schema"] == "repro.bench/v1"
        assert doc["repeats"] == 4
        for entry in doc["benchmarks"]:
            assert len(entry["wall_s"]["repeats"]) == 4

    def test_merged_baseline_compares_clean(self, two_artifacts, tmp_path, capsys):
        base, new = two_artifacts
        out = tmp_path / "merged.json"
        assert main(["merge", str(base), str(new), "--out", str(out)]) == 0
        capsys.readouterr()
        code = main(["compare", str(out), str(new), "--threshold", "20.0"])
        assert code == 0
        assert "verdict: no regression" in capsys.readouterr().out

    def test_mismatched_suites_exit_2(self, two_artifacts, tmp_path, capsys):
        base, new = two_artifacts
        doc = json.loads(new.read_text())
        doc["benchmarks"] = doc["benchmarks"][:1]
        trimmed = tmp_path / "trimmed.json"
        trimmed.write_text(json.dumps(doc))
        assert main(["merge", str(base), str(trimmed), "--out", str(tmp_path / "m.json")]) == 2
        assert "different benchmarks" in capsys.readouterr().err

    def test_missing_input_exit_2(self, two_artifacts, tmp_path, capsys):
        base, _ = two_artifacts
        code = main(
            ["merge", str(base), str(tmp_path / "nope.json"), "--out", str(tmp_path / "m.json")]
        )
        assert code == 2

    def test_unwritable_out_exit_1(self, two_artifacts, tmp_path, capsys):
        base, new = two_artifacts
        blocker = tmp_path / "blocker"
        blocker.write_text("")
        code = main(["merge", str(base), str(new), "--out", str(blocker / "m.json")])
        assert code == 1
        assert "cannot write merged artifact" in capsys.readouterr().err


class TestReport:
    def test_report_table(self, two_artifacts, capsys):
        base, _ = two_artifacts
        assert main(["report", str(base)]) == 0
        out = capsys.readouterr().out
        assert "bench_quick::test_sum" in out
        assert "wall med" in out
        assert "repro.bench/v1" in out

    def test_report_bad_path(self, tmp_path, capsys):
        assert main(["report", str(tmp_path / "nope.json")]) == 2
        assert "error" in capsys.readouterr().err
