"""Tests for the benchmark harness (registration, discovery, artifacts)."""

import json
import time

import pytest

from repro.obs import (
    BENCH_SCHEMA,
    BenchSpec,
    TraceLog,
    build_artifact,
    compare_artifacts,
    discover_suite,
    inputs_hash,
    run_specs,
    scoped_trace,
    select_specs,
    validate_artifact,
    write_artifact,
)
from repro.obs.bench import (
    CALIBRATION_PROBES,
    BenchmarkProxy,
    bench,
    clear_registry,
    detect_git_sha,
    merge_artifacts,
    registered_benchmarks,
)


@pytest.fixture(autouse=True)
def _clean_registry():
    clear_registry()
    yield
    clear_registry()


class TestRegistration:
    def test_bare_decorator(self):
        @bench
        def my_bench():
            return 1

        (spec,) = registered_benchmarks()
        assert spec.name == "my_bench"
        assert spec.group == "default"
        assert spec.fn() == 1

    def test_decorator_with_options(self):
        @bench(name="erlang-inv", group="queueing")
        def f():
            pass

        (spec,) = registered_benchmarks()
        assert spec.name == "erlang-inv"
        assert spec.group == "queueing"

    def test_duplicate_name_rejected(self):
        @bench
        def dup():
            pass

        with pytest.raises(ValueError, match="already registered"):
            bench(name="dup")(lambda: None)


class TestBenchmarkProxy:
    def test_call_passes_through(self):
        proxy = BenchmarkProxy()
        assert proxy(lambda a, b: a + b, 2, b=3) == 5

    def test_pedantic_passes_through(self):
        proxy = BenchmarkProxy()
        assert proxy.pedantic(lambda a: a * 2, args=(4,), rounds=3, iterations=2) == 8

    def test_pedantic_setup(self):
        proxy = BenchmarkProxy()
        result = proxy.pedantic(lambda x, y=0: x + y, setup=lambda: ((5,), {"y": 1}))
        assert result == 6


def _write_suite(tmp_path):
    (tmp_path / "bench_fake.py").write_text(
        "import pytest\n"
        "\n"
        "@pytest.mark.benchmark(group='fake-group')\n"
        "def test_with_fixture(benchmark):\n"
        "    assert benchmark(lambda: 41 + 1) == 42\n"
        "\n"
        "def test_plain():\n"
        "    assert sum(range(10)) == 45\n"
        "\n"
        "def test_needs_unknown_fixture(tmp_path):\n"
        "    pass\n"
        "\n"
        "def helper():\n"
        "    pass\n"
    )
    (tmp_path / "conftest.py").write_text("")
    return tmp_path


class TestDiscovery:
    def test_discovers_test_functions(self, tmp_path):
        specs = discover_suite(_write_suite(tmp_path))
        names = [s.name for s in specs]
        assert names == ["bench_fake::test_plain", "bench_fake::test_with_fixture"]

    def test_group_from_pytest_mark(self, tmp_path):
        specs = {s.name: s for s in discover_suite(_write_suite(tmp_path))}
        assert specs["bench_fake::test_with_fixture"].group == "fake-group"
        assert specs["bench_fake::test_plain"].group == "bench_fake"

    def test_specs_runnable(self, tmp_path):
        for spec in discover_suite(_write_suite(tmp_path)):
            spec.fn()  # assertions inside must hold

    def test_missing_dir(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            discover_suite(tmp_path / "nope")

    def test_real_suite_discovery(self):
        specs = discover_suite("benchmarks")
        names = {s.name for s in specs}
        assert "bench_table1_model::test_table1_rows" in names
        assert "bench_fixed_point::test_reduced_load_fixed_point" in names
        assert len(specs) >= 40

    def test_select_by_name_and_group(self, tmp_path):
        specs = discover_suite(_write_suite(tmp_path))
        assert [s.name for s in select_specs(specs, ["fake-group"])] == [
            "bench_fake::test_with_fixture"
        ]
        assert len(select_specs(specs, ["bench_fake::*"])) == 2
        assert select_specs(specs, None) == specs
        assert select_specs(specs, ["zzz"]) == []


class TestRunSpecs:
    def test_timings_recorded(self):
        spec = BenchSpec(name="s", fn=lambda: sum(range(1000)))
        (result,) = run_specs([spec], warmup=1, repeats=3)
        assert result.ok
        assert len(result.wall_s) == 3
        assert len(result.cpu_s) == 3
        assert result.wall_median > 0.0
        assert result.alloc_peak_bytes is not None

    def test_warmup_not_timed(self):
        calls = []
        spec = BenchSpec(name="s", fn=lambda: calls.append(1))
        (result,) = run_specs(
            [spec], warmup=2, repeats=3, min_sample_s=0.0, track_allocations=False
        )
        assert len(calls) == 5  # 2 warmup + 3 timed, no alloc pass
        assert result.alloc_peak_bytes is None
        assert result.iterations == 1

    def test_calibrated_iterations_for_fast_functions(self):
        calls = []
        spec = BenchSpec(name="s", fn=lambda: calls.append(1))
        (result,) = run_specs(
            [spec], warmup=0, repeats=2, min_sample_s=0.01, track_allocations=False
        )
        # A near-instant function gets batched; values are per-call averages.
        assert result.iterations > 1
        assert len(calls) == CALIBRATION_PROBES + 2 * result.iterations
        assert all(w < 0.01 for w in result.wall_s)

    def test_slow_function_not_batched(self):
        calls = []

        def slow():
            calls.append(1)
            time.sleep(0.02)

        spec = BenchSpec(name="s", fn=slow)
        (result,) = run_specs(
            [spec], warmup=0, repeats=1, min_sample_s=0.01, track_allocations=False
        )
        assert result.iterations == 1
        assert len(calls) == 3  # two agreeing probes, then the timed call

    def test_hiccup_probe_does_not_shrink_batch(self):
        # First probe simulates a scheduler hiccup; the best of the three
        # probes must size the batch, not the slow outlier.
        calls = []

        def fn():
            calls.append(1)
            if len(calls) == 1:
                time.sleep(0.05)

        (result,) = run_specs(
            [BenchSpec(name="s", fn=fn)],
            warmup=0,
            repeats=1,
            min_sample_s=0.01,
            track_allocations=False,
        )
        assert result.iterations > 1

    def test_error_captured_not_raised(self):
        def boom():
            raise RuntimeError("nope")

        results = run_specs(
            [BenchSpec(name="bad", fn=boom), BenchSpec(name="good", fn=lambda: 1)],
            warmup=0,
            repeats=1,
        )
        assert [r.ok for r in results] == [False, True]
        assert "RuntimeError: nope" in results[0].error
        assert results[0].wall_median is None

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            run_specs([], warmup=-1)
        with pytest.raises(ValueError):
            run_specs([], repeats=0)
        with pytest.raises(ValueError):
            run_specs([], min_sample_s=-0.5)

    def test_emits_trace_events(self):
        with scoped_trace(TraceLog()) as trace:
            run_specs([BenchSpec(name="s", fn=lambda: None)], warmup=0, repeats=1)
            events = [e for e in trace.events() if e.name == "bench"]
        assert len(events) == 1
        assert events[0].fields["benchmark"] == "s"
        assert events[0].fields["ok"] is True


class TestArtifact:
    def _results(self, fn=lambda: None):
        return run_specs(
            [BenchSpec(name="s", fn=fn, group="g")], warmup=0, repeats=2
        )

    def test_build_and_validate(self):
        doc = build_artifact(
            self._results(), warmup=0, repeats=2, selection=["s*"], git_sha="abc123"
        )
        validate_artifact(doc)
        assert doc["schema"] == BENCH_SCHEMA
        assert doc["git_sha"] == "abc123"
        assert doc["environment"]["python"]
        assert doc["inputs_hash"] == inputs_hash(
            {"selection": ["s*"], "warmup": 0, "repeats": 2, "benchmarks": ["s"]}
        )
        entry = doc["benchmarks"][0]
        assert entry["wall_s"]["median"] is not None
        assert len(entry["wall_s"]["repeats"]) == 2

    def test_validate_rejects_wrong_schema(self):
        doc = build_artifact(self._results(), warmup=0, repeats=2, git_sha="x")
        doc["schema"] = "other/v9"
        with pytest.raises(ValueError, match="schema"):
            validate_artifact(doc)

    def test_validate_rejects_missing_fields(self):
        doc = build_artifact(self._results(), warmup=0, repeats=2, git_sha="x")
        del doc["benchmarks"][0]["wall_s"]
        with pytest.raises(ValueError, match="wall_s"):
            validate_artifact(doc)

    def test_write_filename_and_collision_suffix(self, tmp_path):
        doc = build_artifact(
            self._results(),
            warmup=0,
            repeats=2,
            git_sha="abcdef",
            created_utc="2026-08-06T10:00:00+00:00",
        )
        first = write_artifact(doc, tmp_path)
        second = write_artifact(doc, tmp_path)
        assert first.name == "BENCH_20260806_abcdef.json"
        assert second.name == "BENCH_20260806_abcdef_2.json"
        loaded = json.loads(first.read_text())
        assert loaded["schema"] == BENCH_SCHEMA

    def test_detect_git_sha_in_repo(self):
        sha = detect_git_sha()
        assert sha == "nogit" or all(c in "0123456789abcdef" for c in sha)


class TestMerge:
    def _artifact(self, fn=lambda: None, git_sha="abc"):
        results = run_specs(
            [BenchSpec(name="s", fn=fn, group="g")],
            warmup=0,
            repeats=2,
            min_sample_s=0.0,
        )
        return build_artifact(results, warmup=0, repeats=2, git_sha=git_sha)

    def test_pools_repeats_and_recomputes_stats(self):
        a, b = self._artifact(), self._artifact()
        merged = merge_artifacts([a, b])
        validate_artifact(merged)
        entry = merged["benchmarks"][0]
        expected = a["benchmarks"][0]["wall_s"]["repeats"] + (
            b["benchmarks"][0]["wall_s"]["repeats"]
        )
        assert entry["wall_s"]["repeats"] == expected
        assert entry["wall_s"]["min"] == min(expected)
        assert merged["repeats"] == 4
        assert merged["git_sha"] == "abc"

    def test_mixed_shas_flagged(self):
        merged = merge_artifacts([self._artifact(), self._artifact(git_sha="zzz")])
        assert merged["git_sha"] == "mixed"

    def test_single_artifact_is_identity_on_repeats(self):
        a = self._artifact()
        merged = merge_artifacts([a])
        assert (
            merged["benchmarks"][0]["wall_s"]["repeats"]
            == a["benchmarks"][0]["wall_s"]["repeats"]
        )

    def test_mismatched_suites_rejected(self):
        a = self._artifact()
        b = self._artifact()
        b["benchmarks"][0]["name"] = "other"
        with pytest.raises(ValueError, match="different benchmarks"):
            merge_artifacts([a, b])

    def test_failure_in_any_run_propagates(self):
        def boom():
            raise RuntimeError("nope")

        merged = merge_artifacts([self._artifact(), self._artifact(fn=boom)])
        entry = merged["benchmarks"][0]
        assert entry["ok"] is False
        assert "nope" in entry["error"]

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            merge_artifacts([])


class TestTrajectoryAcceptance:
    """The ISSUE acceptance flow: same-commit reruns compare clean, an
    injected slowdown is flagged."""

    def _artifact(self, fn, repeats=3):
        results = run_specs(
            [BenchSpec(name="target", fn=fn)],
            warmup=1,
            repeats=repeats,
            track_allocations=False,
        )
        return build_artifact(results, warmup=1, repeats=repeats, git_sha="same")

    def test_same_commit_reruns_no_regression(self):
        fn = lambda: time.sleep(0.01)
        comparison = compare_artifacts(
            self._artifact(fn), self._artifact(fn), threshold=0.10
        )
        assert comparison.verdict == "no regression"

    def test_injected_sleep_flagged_as_regression(self):
        base = self._artifact(lambda: time.sleep(0.005))
        slowed = self._artifact(lambda: time.sleep(0.02))
        comparison = compare_artifacts(base, slowed, threshold=0.25)
        assert comparison.verdict == "regression"
        (delta,) = comparison.regressions
        assert delta.name == "target"
        assert delta.rel_change > 0.25
