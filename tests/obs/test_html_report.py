"""Self-contained HTML run report: renderer, sparklines, and the CLI."""

import json

import pytest

from repro.obs import render_report, collect_bench_docs, write_report
from repro.obs.bench import BenchResult, build_artifact
from repro.obs.fidelity import (
    Expectation,
    Scoreboard,
    build_fidelity_artifact,
    check_expectations,
)
from repro.obs.report import _span_tree, _sparkline, main


def _fidelity_doc(overall="match"):
    actual = {"m": 1.0} if overall == "match" else {"m": 9.0}
    board = Scoreboard(
        verdicts=tuple(
            check_expectations("e1", actual, [Expectation("m", 1.0, abs_tol=0.1)])
        )
    )
    return build_fidelity_artifact(
        board, git_sha="abc", created_utc="2026-08-06T00:00:00+00:00"
    )


def _bench_doc(created="2026-08-06T00:00:00+00:00"):
    result = BenchResult(
        name="bench-a", group="g", source="t", wall_s=[0.01, 0.02], cpu_s=[0.01, 0.02]
    )
    return build_artifact(
        [result], warmup=0, repeats=2, git_sha="abc", created_utc=created
    )


class TestRenderReport:
    def test_all_sections_present_even_when_empty(self):
        html = render_report(generated_utc="2026-08-06T00:00:00+00:00")
        for heading in (
            "Fidelity scoreboard",
            "Run manifest",
            "Metrics",
            "Trace summary",
            "Performance trajectory",
            "Experiment results",
        ):
            assert f"<h2>{heading}</h2>" in html
        assert "No fidelity data available" in html
        assert "No run manifest available" in html

    def test_self_contained(self):
        html = render_report(fidelity_doc=_fidelity_doc(), bench_docs=[_bench_doc()])
        assert "<script" not in html
        assert "http://" not in html and "https://" not in html
        assert "<style>" in html

    def test_fidelity_badges(self):
        html = render_report(fidelity_doc=_fidelity_doc("fail"))
        assert '<span class="badge badge-fail">fail</span>' in html
        html = render_report(fidelity_doc=_fidelity_doc("match"))
        assert '<span class="badge badge-match">match</span>' in html

    def test_manifest_section_uses_manifest_metrics_and_trace(self):
        manifest = {
            "schema": "repro.run-manifest/v1",
            "seed": 7,
            "environment": {"git_sha": "cafe1234"},
            "metrics": {
                "solves_total": {
                    "kind": "counter",
                    "series": [{"labels": {"svc": "web"}, "value": 3}],
                }
            },
            "trace": {"events": 4, "emitted": 4, "dropped": 0, "capacity": 4096},
        }
        html = render_report(manifest=manifest)
        assert "commit cafe1234" in html
        assert "solves_total" in html and "svc=web" in html
        assert "capacity" in html

    def test_trace_dropped_events_warn(self):
        html = render_report(
            trace_stats={"events": 2, "emitted": 10, "dropped": 8, "capacity": 2}
        )
        assert "dropped 8" in html

    def test_trace_warning_events_surface(self):
        events = [
            {"ts": 1.0, "kind": "warning", "name": "stall", "idle_s": 31.0},
        ]
        html = render_report(trace_events=events)
        assert "1 warning event(s)" in html and "stall" in html

    def test_results_section_lists_summaries(self):
        html = render_report(
            results=[
                {"experiment": "e1", "title": "T", "summary": {"k": 1.5}},
            ]
        )
        assert "e1" in html and "1.5" in html

    def test_bench_trend_has_sparkline(self):
        docs = [
            _bench_doc("2026-08-04T00:00:00+00:00"),
            _bench_doc("2026-08-05T00:00:00+00:00"),
            _bench_doc("2026-08-06T00:00:00+00:00"),
        ]
        html = render_report(bench_docs=docs)
        assert "3 artifact(s)" in html
        assert '<svg class="spark"' in html


def _series_doc(name="pool.busy_servers", labels=None, values=(1.0, 9.0, 2.0)):
    return {
        "schema": "repro.timeseries/v1",
        "kind": "series",
        "series": name,
        "labels": labels or {"pool": "p"},
        "agg": "gauge",
        "t0": 0.0,
        "bucket_width": 1.0,
        "buckets": len(values),
        "decimations": 0,
        "values": list(values),
    }


def _alarm_doc(state="fire", t=2.0):
    return {
        "schema": "repro.timeseries/v1",
        "kind": "alarm",
        "rule": "hot",
        "alarm_kind": "overload",
        "state": state,
        "t": t,
        "value": 9.0,
        "threshold": 8.0,
        "series": "pool.busy_servers",
        "labels": {"pool": "p"},
    }


class TestTimelineSection:
    def test_renders_charts_and_alarm_table(self):
        html = render_report(
            timeseries_docs=[_series_doc(), _alarm_doc(), _alarm_doc("clear", 3.0)]
        )
        assert "<h2>Telemetry timeline</h2>" in html
        assert "pool.busy_servers" in html
        assert "<svg" in html
        assert "Alarm transitions" in html
        assert "badge-fail" in html  # fire
        assert "badge-match" in html  # clear

    def test_absent_docs_render_no_section(self):
        html = render_report()
        assert "Telemetry timeline" not in html
        html = render_report(timeseries_docs=[])
        assert "Telemetry timeline" not in html

    def test_alarm_markers_only_on_matching_series(self):
        other = _series_doc(name="pool.occupancy", labels={"pool": "p"})
        html = render_report(timeseries_docs=[other, _alarm_doc()])
        # The alarm doc targets busy_servers; occupancy gets no marker line.
        assert "<title>hot fire" not in html

    def test_chart_cap_truncates(self):
        docs = [
            _series_doc(name=f"s{i:03d}", labels={}) for i in range(30)
        ]
        html = render_report(timeseries_docs=docs)
        assert "more series not charted" in html

    def test_self_contained_with_timeline(self):
        html = render_report(
            timeseries_docs=[_series_doc(), _alarm_doc()]
        )
        assert "<script" not in html
        assert "http://" not in html and "https://" not in html


class TestSparkline:
    def test_polyline_over_values(self):
        svg = _sparkline([1.0, 2.0, 3.0])
        assert svg.startswith("<svg") and "polyline" in svg

    def test_constant_series_does_not_divide_by_zero(self):
        assert "polyline" in _sparkline([2.0, 2.0, 2.0])

    def test_short_or_nan_series_degrade_gracefully(self):
        assert "svg" not in _sparkline([1.0])
        assert "svg" not in _sparkline([])
        assert "polyline" in _sparkline([1.0, float("nan"), 3.0])


class TestSpanTree:
    def test_nesting_and_durations(self):
        events = [
            {"kind": "span_begin", "name": "outer", "span": 1},
            {"kind": "span_begin", "name": "inner", "span": 2},
            {"kind": "span_end", "name": "inner", "span": 2, "duration_s": 0.5},
            {"kind": "span_end", "name": "outer", "span": 1, "duration_s": 1.0},
        ]
        roots = _span_tree(events)
        assert len(roots) == 1
        assert roots[0]["name"] == "outer"
        assert roots[0]["duration_s"] == 1.0
        assert roots[0]["children"][0]["name"] == "inner"

    def test_unbalanced_end_ignored(self):
        assert _span_tree([{"kind": "span_end", "name": "x"}]) == []

    def test_open_span_kept_without_duration(self):
        roots = _span_tree([{"kind": "span_begin", "name": "x"}])
        assert roots[0]["duration_s"] is None


class TestCli:
    @pytest.fixture
    def results_dir(self, tmp_path):
        results = tmp_path / "results"
        results.mkdir()
        (results / "e1.json").write_text(
            json.dumps(
                {"experiment": "e1", "title": "T", "summary": {"m": 1.0}}
            )
        )
        return results

    def test_report_from_artifacts_without_rerunning(self, results_dir, tmp_path, capsys):
        fid = _fidelity_doc()
        (results_dir / "FIDELITY_20260806_abc.json").write_text(json.dumps(fid))
        out = tmp_path / "report.html"
        assert main(["--results", str(results_dir), "--out", str(out)]) == 0
        html = out.read_text()
        assert "badge-match" in html
        assert "e1" in html
        assert "report:" in capsys.readouterr().out

    def test_timeseries_auto_discovered(self, results_dir, tmp_path, capsys):
        (results_dir / "timeseries.jsonl").write_text(
            json.dumps(_series_doc()) + "\n" + json.dumps(_alarm_doc()) + "\n"
        )
        out = tmp_path / "report.html"
        assert main(["--results", str(results_dir), "--out", str(out)]) == 0
        capsys.readouterr()
        html = out.read_text()
        assert "<h2>Telemetry timeline</h2>" in html
        assert "pool.busy_servers" in html

    def test_no_timeseries_degrades_without_error(
        self, results_dir, tmp_path, capsys
    ):
        out = tmp_path / "report.html"
        assert main(["--results", str(results_dir), "--out", str(out)]) == 0
        capsys.readouterr()
        assert "Telemetry timeline" not in out.read_text()

    def test_foreign_jsonl_skipped_silently(self, results_dir, tmp_path, capsys):
        (results_dir / "trace.jsonl").write_text('{"kind": "span_begin"}\n')
        out = tmp_path / "report.html"
        assert main(["--results", str(results_dir), "--out", str(out)]) == 0
        capsys.readouterr()
        assert "Telemetry timeline" not in out.read_text()

    def test_explicit_missing_timeseries_is_input_error(
        self, results_dir, tmp_path, capsys
    ):
        code = main([
            "--results", str(results_dir),
            "--timeseries", str(tmp_path / "nope.jsonl"),
            "--out", str(tmp_path / "r.html"),
        ])
        assert code == 2
        assert "timeseries" in capsys.readouterr().err

    def test_missing_results_dir_is_input_error(self, tmp_path, capsys):
        code = main(["--results", str(tmp_path / "nope"), "--out", str(tmp_path / "r.html")])
        assert code == 2
        assert "error" in capsys.readouterr().err

    def test_empty_results_dir_one_line_error(self, tmp_path, capsys):
        empty = tmp_path / "empty"
        empty.mkdir()
        code = main(["--results", str(empty), "--out", str(tmp_path / "r.html")])
        assert code == 2
        err = capsys.readouterr().err
        assert err.startswith("error: no run artifacts under")
        assert "repro-experiments" in err
        assert "Traceback" not in err
        assert not (tmp_path / "r.html").exists()

    def test_explicit_missing_manifest_is_input_error(self, results_dir, tmp_path, capsys):
        code = main(
            [
                "--results",
                str(results_dir),
                "--manifest",
                str(tmp_path / "absent.json"),
                "--out",
                str(tmp_path / "r.html"),
            ]
        )
        assert code == 2

    def test_unwritable_output_is_write_error(self, results_dir, tmp_path, capsys):
        blocker = tmp_path / "blocker"
        blocker.write_text("")
        code = main(
            ["--results", str(results_dir), "--out", str(blocker / "x" / "r.html")]
        )
        assert code == 1
        assert "cannot write" in capsys.readouterr().err

    def test_trace_summarised(self, results_dir, tmp_path, capsys):
        trace = tmp_path / "trace.jsonl"
        trace.write_text(
            "\n".join(
                json.dumps(e)
                for e in [
                    {"ts": 0.0, "kind": "span_begin", "name": "experiment"},
                    {"ts": 1.0, "kind": "span_end", "name": "experiment", "duration_s": 1.0},
                ]
            )
        )
        out = tmp_path / "r.html"
        code = main(
            ["--results", str(results_dir), "--trace", str(trace), "--out", str(out)]
        )
        capsys.readouterr()
        assert code == 0
        assert "Span tree" in out.read_text()

    def test_evaluates_declared_expectations_without_artifact(self, tmp_path, capsys):
        # A real table1 export and no FIDELITY_*.json: the CLI grades the
        # on-disk summary against the declared expectations.
        from repro.experiments.table1 import run

        results = tmp_path / "results"
        run().export(results)
        out = tmp_path / "r.html"
        assert main(["--results", str(results), "--out", str(out)]) == 0
        capsys.readouterr()
        html = out.read_text()
        assert "group1_matches_paper" in html
        assert "badge-match" in html


class TestCollectBenchDocs:
    def test_collects_sorted_and_deduped(self, tmp_path):
        a = tmp_path / "a"
        a.mkdir()
        (a / "BENCH_new.json").write_text(
            json.dumps(_bench_doc("2026-08-06T00:00:00+00:00"))
        )
        (a / "BENCH_old.json").write_text(
            json.dumps(_bench_doc("2026-08-01T00:00:00+00:00"))
        )
        (a / "BENCH_corrupt.json").write_text("{nope")
        docs = collect_bench_docs([a, a, tmp_path / "missing"])
        assert [d["created_utc"] for d in docs] == [
            "2026-08-01T00:00:00+00:00",
            "2026-08-06T00:00:00+00:00",
        ]

    def test_write_report_creates_parents(self, tmp_path):
        path = write_report("<html></html>", tmp_path / "deep" / "r.html")
        assert path.read_text() == "<html></html>"
