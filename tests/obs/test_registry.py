"""Unit tests for the metrics registry and its instruments."""

import math

import pytest

from repro.obs import (
    MetricsRegistry,
    NullRegistry,
    get_registry,
    scoped_registry,
    set_registry,
)
from repro.obs.registry import Histogram, log_bucket_bounds


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        c = MetricsRegistry().counter("requests_total")
        assert c.value == 0.0
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_decrease_rejected(self):
        c = MetricsRegistry().counter("requests_total")
        with pytest.raises(ValueError):
            c.inc(-1.0)


class TestGauge:
    def test_set_inc_dec(self):
        g = MetricsRegistry().gauge("depth")
        g.set(10.0)
        g.inc(5.0)
        g.dec(3.0)
        assert g.value == 12.0


class TestHistogram:
    def test_log_bucket_bounds(self):
        assert log_bucket_bounds(1.0, 2.0, 4) == (1.0, 2.0, 4.0, 8.0)
        with pytest.raises(ValueError):
            log_bucket_bounds(0.0, 2.0, 4)
        with pytest.raises(ValueError):
            log_bucket_bounds(1.0, 1.0, 4)
        with pytest.raises(ValueError):
            log_bucket_bounds(1.0, 2.0, 0)

    def test_observations_land_in_buckets(self):
        h = Histogram("lat", start=1.0, factor=2.0, buckets=3)  # bounds 1,2,4
        for v in (0.5, 1.5, 3.0, 100.0):
            h.observe(v)
        cumulative = h.bucket_counts()
        assert cumulative[0] == (1.0, 1)   # 0.5
        assert cumulative[1] == (2.0, 2)   # +1.5
        assert cumulative[2] == (4.0, 3)   # +3.0
        assert cumulative[3] == (math.inf, 4)  # +100
        assert h.count == 4
        assert h.sum == pytest.approx(105.0)
        assert h.minimum == 0.5
        assert h.maximum == 100.0

    def test_boundary_value_counts_in_its_bucket(self):
        h = Histogram("lat", start=1.0, factor=2.0, buckets=3)
        h.observe(2.0)  # le="2" bucket, Prometheus-style inclusive upper bound
        assert h.bucket_counts()[1] == (2.0, 1)


class TestTimer:
    def test_records_elapsed_seconds(self):
        reg = MetricsRegistry()
        t = reg.timer("solve_seconds")
        with t:
            pass
        with t.time():
            pass
        assert t.count == 2
        assert t.total_seconds >= 0.0


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert reg.counter("a", labels={"x": "1"}) is reg.counter("a", labels={"x": "1"})
        assert reg.counter("a") is not reg.counter("a", labels={"x": "1"})

    def test_label_order_is_canonical(self):
        reg = MetricsRegistry()
        assert reg.counter("a", labels={"x": "1", "y": "2"}) is reg.counter(
            "a", labels={"y": "2", "x": "1"}
        )

    def test_kind_conflict_rejected(self):
        reg = MetricsRegistry()
        reg.counter("a")
        with pytest.raises(ValueError, match="already registered"):
            reg.gauge("a")

    def test_snapshot_shape(self):
        reg = MetricsRegistry()
        reg.counter("c", labels={"k": "v"}).inc(2)
        reg.gauge("g").set(7.0)
        reg.timer("t").observe(0.5)
        snap = reg.snapshot()
        assert snap["c"]["kind"] == "counter"
        assert snap["c"]["series"][0] == {"labels": {"k": "v"}, "value": 2.0}
        assert snap["g"]["series"][0]["value"] == 7.0
        assert snap["t"]["series"][0]["value"]["count"] == 1


class TestGlobalRegistry:
    def test_default_is_disabled(self):
        reg = get_registry()
        assert isinstance(reg, NullRegistry)
        assert not reg.enabled
        # The null instruments swallow the full API.
        reg.counter("x").inc()
        reg.gauge("x").set(3)
        reg.histogram("x").observe(1.0)
        with reg.timer("x"):
            pass
        assert reg.snapshot() == {}

    def test_scoped_registry_installs_and_restores(self):
        before = get_registry()
        with scoped_registry() as reg:
            assert get_registry() is reg
            assert reg.enabled
            reg.counter("seen_total").inc()
            assert reg.snapshot()["seen_total"]["series"][0]["value"] == 1.0
        assert get_registry() is before

    def test_scoped_registry_restores_on_error(self):
        before = get_registry()
        with pytest.raises(RuntimeError):
            with scoped_registry():
                raise RuntimeError("boom")
        assert get_registry() is before

    def test_set_registry_none_installs_null(self):
        previous = set_registry(MetricsRegistry())
        try:
            assert get_registry().enabled
            set_registry(None)
            assert not get_registry().enabled
        finally:
            set_registry(previous)

    def test_nested_scopes_isolate(self):
        with scoped_registry() as outer:
            outer.counter("c").inc()
            with scoped_registry() as inner:
                assert inner.counter("c").value == 0.0
            assert get_registry() is outer
