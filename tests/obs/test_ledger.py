"""Run ledger: artifact discovery, typing, and the fail-soft contract."""

import json

import pytest

from repro.obs import TraceLog, build_manifest
from repro.obs.bench import BenchResult, build_artifact
from repro.obs.fidelity import (
    Expectation,
    Scoreboard,
    build_fidelity_artifact,
    check_expectations,
)
from repro.obs.ledger import (
    LEDGER_KINDS,
    build_ledger,
    fingerprint_key,
    ledger_with_live_results,
)


def _result_doc(experiment="fig12", summary=None):
    return {
        "experiment": experiment,
        "title": "T",
        "summary": summary if summary is not None else {"m": 1.0},
        "rows": 2,
    }


def _bench_doc(created="2026-08-06T00:00:00+00:00"):
    result = BenchResult(
        name="bench-a", group="g", source="t", wall_s=[0.01, 0.02], cpu_s=[0.01, 0.02]
    )
    return build_artifact(
        [result], warmup=0, repeats=2, git_sha="abc", created_utc=created
    )


def _fidelity_doc(created="2026-08-06T00:00:00+00:00"):
    board = Scoreboard(
        verdicts=tuple(
            check_expectations(
                "fig12", {"m": 1.0}, [Expectation("m", 1.0, abs_tol=0.1)]
            )
        )
    )
    return build_fidelity_artifact(board, git_sha="abc", created_utc=created)


@pytest.fixture
def artifact_dir(tmp_path):
    d = tmp_path / "results"
    d.mkdir()
    (d / "fig12.json").write_text(json.dumps(_result_doc()))
    (d / "run_manifest.json").write_text(
        json.dumps(build_manifest({"tool": "t"}, seed=2009))
    )
    (d / "BENCH_20260806_abc.json").write_text(json.dumps(_bench_doc()))
    (d / "FIDELITY_20260806_abc.json").write_text(json.dumps(_fidelity_doc()))
    (d / "trace.jsonl").write_text(
        '{"ts": 1.0, "kind": "event", "name": "x"}\n'
        '{"ts": 2.0, "kind": "warning", "name": "y"}\n'
    )
    return d


class TestDiscovery:
    def test_indexes_every_artifact_family(self, artifact_dir):
        ledger = build_ledger([artifact_dir])
        counts = ledger.counts()
        assert set(counts) == set(LEDGER_KINDS)
        assert counts["manifest"] == 1
        assert counts["result"] == 1
        assert counts["bench"] == 1
        assert counts["fidelity"] == 1
        assert counts["trace"] == 1
        assert not ledger.skipped

    def test_results_inherit_manifest_seed_and_env(self, artifact_dir):
        ledger = build_ledger([artifact_dir])
        (entry,) = ledger.results
        assert entry.seed == 2009
        assert entry.env_key == ledger.manifests[0].env_key
        assert ledger.key(entry) == ("fig12", 2009, entry.env_key)

    def test_bench_and_fidelity_docs_sorted_by_creation(self, artifact_dir):
        (artifact_dir / "BENCH_20260801_abc.json").write_text(
            json.dumps(_bench_doc("2026-08-01T00:00:00+00:00"))
        )
        ledger = build_ledger([artifact_dir])
        created = [d["created_utc"] for d in ledger.bench_docs()]
        assert created == sorted(created)

    def test_first_directory_wins_per_experiment(self, tmp_path):
        a, b = tmp_path / "a", tmp_path / "b"
        a.mkdir(), b.mkdir()
        (a / "fig12.json").write_text(json.dumps(_result_doc(summary={"m": 1.0})))
        (b / "fig12.json").write_text(json.dumps(_result_doc(summary={"m": 2.0})))
        ledger = build_ledger([a, b])
        assert ledger.summaries() == {"fig12": {"m": 1.0}}
        assert len(ledger.results) == 2  # both indexed, first authoritative

    def test_missing_directory_is_skipped_not_fatal(self, tmp_path):
        trace = TraceLog()
        ledger = build_ledger([tmp_path / "nope"], trace=trace)
        assert not ledger.entries
        assert ledger.skipped[0].reason == "not a directory"
        assert any(e.name == "ledger_skip" for e in trace.events())

    def test_empty_summary_still_counts_as_result(self, tmp_path):
        (tmp_path / "x.json").write_text(json.dumps(_result_doc(summary={})))
        ledger = build_ledger([tmp_path])
        assert ledger.experiments == ["fig12"]


class TestRobustness:
    """Truncated, foreign, and duplicate files skip with a warning."""

    def test_truncated_json_skipped_with_warning(self, tmp_path):
        (tmp_path / "broken.json").write_text('{"experiment": "x", ')
        trace = TraceLog()
        ledger = build_ledger([tmp_path], trace=trace)
        assert not ledger.entries
        assert "truncated or invalid JSON" in ledger.skipped[0].reason
        warnings = [e for e in trace.events() if e.kind == "warning"]
        assert warnings and warnings[0].name == "ledger_skip"

    def test_schema_version_mismatch_skipped_with_warning(self, tmp_path):
        manifest = build_manifest({"tool": "t"})
        manifest["schema"] = "repro.run-manifest/v99"
        (tmp_path / "run_manifest.json").write_text(json.dumps(manifest))
        bench = _bench_doc()
        bench["schema"] = "repro.bench/v99"
        (tmp_path / "BENCH_20260806_abc.json").write_text(json.dumps(bench))
        foreign = {"schema": "someone.else/v1", "data": 1}
        (tmp_path / "other.json").write_text(json.dumps(foreign))
        trace = TraceLog()
        ledger = build_ledger([tmp_path], trace=trace)
        assert not ledger.entries
        assert len(ledger.skipped) == 3
        assert all("schema-version mismatch" in s.reason for s in ledger.skipped)
        assert len([e for e in trace.events() if e.name == "ledger_skip"]) == 3

    def test_duplicate_run_ids_skipped_with_warning(self, tmp_path):
        a, b = tmp_path / "a", tmp_path / "b"
        a.mkdir(), b.mkdir()
        doc = json.dumps(_result_doc())
        (a / "fig12.json").write_text(doc)
        (b / "fig12.json").write_text(doc)  # identical content -> same run id
        trace = TraceLog()
        ledger = build_ledger([a, b], trace=trace)
        assert len(ledger.results) == 1
        assert "duplicate run id" in ledger.skipped[0].reason
        assert any(e.name == "ledger_skip" for e in trace.events())

    def test_fleet_artifacts_not_reingested(self, tmp_path):
        (tmp_path / "FLEET_20260806_abc.json").write_text(json.dumps({"schema": "repro.fleet/v1"}))
        trace = TraceLog()
        ledger = build_ledger([tmp_path], trace=trace)
        assert not ledger.entries
        assert "dashboard output" in ledger.skipped[0].reason
        # expected skip: no warning noise
        assert not [e for e in trace.events() if e.kind == "warning"]

    def test_unparseable_jsonl_lines_tolerated(self, tmp_path):
        (tmp_path / "t.jsonl").write_text(
            'not json\n{"ts": 1, "kind": "event", "name": "x"}\n'
        )
        ledger = build_ledger([tmp_path])
        (entry,) = ledger.of_kind("trace")
        assert entry.doc["events"] == 1

    def test_never_raises_on_garbage_directory(self, tmp_path):
        (tmp_path / "a.json").write_text("[1, 2, 3]")
        (tmp_path / "b.json").write_text("null")
        (tmp_path / "c.jsonl").write_text("")
        (tmp_path / "d.json").write_text('{"neither": "fish nor fowl"}')
        ledger = build_ledger([tmp_path])
        assert not ledger.entries
        assert len(ledger.skipped) == 4


class TestEnvKeys:
    def test_fingerprint_key_stable_and_restricted(self):
        env = {"python": "3.11", "git_sha": "abc", "platform": "x"}
        noisy = dict(env, extraneous="ignored")
        assert fingerprint_key(env) == fingerprint_key(noisy)
        assert fingerprint_key(env) != fingerprint_key({**env, "git_sha": "def"})
        assert fingerprint_key(None) is None
        assert fingerprint_key({}) is None

    def test_dominant_env_key(self, tmp_path):
        a, b = tmp_path / "a", tmp_path / "b"
        a.mkdir(), b.mkdir()
        m1 = build_manifest({"tool": "t"}, seed=1)
        m2 = build_manifest({"tool": "u"}, seed=2)
        m2["environment"] = dict(m2["environment"], git_sha="elsewhere")
        (a / "run_manifest.json").write_text(json.dumps(m1))
        (a / "fig12.json").write_text(json.dumps(_result_doc("fig12")))
        (a / "fig13.json").write_text(json.dumps(_result_doc("fig13")))
        (b / "run_manifest.json").write_text(json.dumps(m2))
        ledger = build_ledger([a, b])
        assert len(ledger.env_counts()) == 2
        assert ledger.dominant_env_key() == fingerprint_key(m1["environment"])


class TestLiveResults:
    def test_live_entries_come_first_and_dedup_disk_copies(self, tmp_path):
        (tmp_path / "fig12.json").write_text(json.dumps(_result_doc()))
        disk = build_ledger([tmp_path])
        merged = ledger_with_live_results(disk, {"fig12": {"m": 1.0}}, seed=7)
        # identical summary -> identical run id -> disk copy dropped
        assert len(merged.results) == 1
        assert merged.results[0].path == "<live-run>"
        assert merged.results[0].seed == 7

    def test_diverging_live_summary_wins(self, tmp_path):
        (tmp_path / "fig12.json").write_text(json.dumps(_result_doc(summary={"m": 1.0})))
        disk = build_ledger([tmp_path])
        merged = ledger_with_live_results(disk, {"fig12": {"m": 5.0}})
        assert merged.summaries() == {"fig12": {"m": 5.0}}
        assert len(merged.results) == 2
