"""Unit tests for the sliding-window threshold alarm manager."""

import pytest

from repro.obs import scoped_registry
from repro.obs.alarms import AlarmEvent, AlarmManager, AlarmRule
from repro.obs.timeseries import TelemetryBus, validate_timeseries_doc
from repro.obs.trace import scoped_trace


def bus_with_gauge(levels, name="pool.busy_servers", labels=None):
    """A bus holding one gauge whose per-bucket means equal ``levels``."""
    bus = TelemetryBus(bucket_width=1.0)
    gauge = bus.gauge(name, labels)
    for i, level in enumerate(levels):
        gauge.set(float(i), level)
    gauge.finalize(float(len(levels)))
    return bus


class TestAlarmRule:
    def test_validation(self):
        with pytest.raises(ValueError):
            AlarmRule("", "s", "overload", 1.0)
        with pytest.raises(ValueError):
            AlarmRule("r", "s", "sideways", 1.0)
        with pytest.raises(ValueError):
            AlarmRule("r", "s", "overload", 1.0, window=0)
        with pytest.raises(ValueError):
            AlarmRule("r", "s", "overload", 1.0, debounce=0)
        # Hysteresis must sit on the safe side of the firing threshold.
        with pytest.raises(ValueError):
            AlarmRule("r", "s", "overload", 1.0, clear=2.0)
        with pytest.raises(ValueError):
            AlarmRule("r", "s", "underload", 1.0, clear=0.5)

    def test_clear_defaults_to_threshold(self):
        rule = AlarmRule("r", "s", "overload", 3.0)
        assert rule.clear_threshold == 3.0

    def test_label_subset_match(self):
        rule = AlarmRule("r", "s", "overload", 1.0, labels={"pool": "p"})
        assert rule.matches("s", {"pool": "p", "resource": "cpu"})
        assert not rule.matches("s", {"pool": "q"})
        assert not rule.matches("other", {"pool": "p"})


class TestEvaluate:
    def test_overload_fire_and_clear(self):
        bus = bus_with_gauge([1.0, 9.0, 9.0, 1.0, 1.0])
        manager = AlarmManager([
            AlarmRule("hot", "pool.busy_servers", "overload", 8.0, clear=4.0),
        ])
        events = manager.evaluate(bus)
        assert [(e.state, e.t) for e in events] == [("fire", 2.0), ("clear", 4.0)]

    def test_underload_mirrors_overload(self):
        bus = bus_with_gauge([9.0, 1.0, 1.0, 9.0, 9.0])
        manager = AlarmManager([
            AlarmRule("cold", "pool.busy_servers", "underload", 2.0, clear=5.0),
        ])
        events = manager.evaluate(bus)
        assert [(e.state, e.t) for e in events] == [("fire", 2.0), ("clear", 4.0)]

    def test_debounce_suppresses_single_bucket_spike(self):
        spike = bus_with_gauge([1.0, 9.0, 1.0, 1.0, 1.0])
        sustained = bus_with_gauge([1.0, 9.0, 9.0, 1.0, 1.0])
        rule = AlarmRule("hot", "pool.busy_servers", "overload", 8.0, debounce=2)
        assert AlarmManager([rule]).evaluate(spike) == []
        events = AlarmManager([rule]).evaluate(sustained)
        assert [e.state for e in events] == ["fire", "clear"]
        assert events[0].t == 3.0  # second consecutive breach

    def test_hysteresis_prevents_flapping(self):
        # Oscillates around the firing threshold but never below clear.
        bus = bus_with_gauge([9.0, 7.0, 9.0, 7.0, 9.0])
        manager = AlarmManager([
            AlarmRule("hot", "pool.busy_servers", "overload", 8.0, clear=4.0),
        ])
        events = manager.evaluate(bus)
        assert [e.state for e in events] == ["fire"]  # no clears, no re-fires

    def test_window_smooths_the_signal(self):
        bus = bus_with_gauge([0.0, 12.0, 0.0, 12.0])
        windowed = AlarmRule(
            "hot", "pool.busy_servers", "overload", 8.0, window=2
        )
        # Window means: 0, 6, 6, 6 — never reaches 8.
        assert AlarmManager([windowed]).evaluate(bus) == []

    def test_window_means_short_prefix(self):
        means = AlarmManager._window_means([4.0, 8.0, 12.0], window=4)
        assert means == [4.0, 6.0, 8.0]

    def test_rule_applies_per_matching_series(self):
        bus = TelemetryBus(bucket_width=1.0)
        for pool in ("a", "b"):
            g = bus.gauge("pool.busy_servers", {"pool": pool})
            g.set(0.0, 9.0)
            g.finalize(2.0)
        manager = AlarmManager([
            AlarmRule("hot", "pool.busy_servers", "overload", 8.0),
        ])
        events = manager.evaluate(bus)
        assert [e.labels["pool"] for e in events] == ["a", "b"]

    def test_duplicate_rule_names_rejected(self):
        rule = AlarmRule("r", "s", "overload", 1.0)
        with pytest.raises(ValueError, match="duplicate"):
            AlarmManager([rule, rule])


class TestEmit:
    def test_events_reach_trace_and_registry(self):
        bus = bus_with_gauge([1.0, 9.0, 9.0, 1.0, 1.0], labels={"pool": "p"})
        manager = AlarmManager([
            AlarmRule("hot", "pool.busy_servers", "overload", 8.0, clear=4.0),
        ])
        with scoped_trace() as trace, scoped_registry() as registry:
            events = manager.emit(manager.evaluate(bus))
        assert len(events) == 2
        kinds = [e.kind for e in trace.events()]
        assert kinds.count("alarm") == 2
        snapshot = registry.snapshot()["alarms_total"]
        states = {
            entry["labels"]["state"]: entry["value"]
            for entry in snapshot["series"]
        }
        assert states == {"fire": 1.0, "clear": 1.0}

    def test_summarize_counts_by_kind(self):
        events = [
            AlarmEvent("a", "overload", "fire", 1.0, 9.0, 8.0, "s", {}),
            AlarmEvent("a", "overload", "clear", 2.0, 1.0, 4.0, "s", {}),
            AlarmEvent("b", "underload", "fire", 3.0, 0.5, 1.0, "s", {}),
        ]
        assert AlarmManager([]).summarize(events) == {
            "overload_fires": 1,
            "underload_fires": 1,
            "clears": 1,
            "open_at_exit": 0,
        }

    def test_event_docs_validate_against_schema(self):
        bus = bus_with_gauge([1.0, 9.0, 9.0, 1.0])
        manager = AlarmManager([
            AlarmRule("hot", "pool.busy_servers", "overload", 8.0, clear=4.0),
        ])
        for event in manager.evaluate(bus):
            validate_timeseries_doc(event.to_doc())


class TestOpenAtExit:
    def _manager(self):
        return AlarmManager([
            AlarmRule("hot", "pool.busy_servers", "overload", 8.0, clear=4.0),
        ])

    def test_unresolved_fire_is_reported_open(self):
        bus = bus_with_gauge([1.0, 9.0, 9.0])  # fires at t=2, never clears
        manager = self._manager()
        open_events = manager.open_alarms(bus)
        assert [(e.rule, e.state, e.t) for e in open_events] == [
            ("hot", "open_at_exit", 3.0)
        ]
        # evaluate() itself still only reports the transition.
        assert [e.state for e in manager.evaluate(bus)] == ["fire"]

    def test_cleared_alarm_is_not_open(self):
        bus = bus_with_gauge([1.0, 9.0, 9.0, 1.0, 1.0])
        assert self._manager().open_alarms(bus) == []

    def test_never_fired_is_not_open(self):
        bus = bus_with_gauge([1.0, 1.0, 1.0])
        assert self._manager().open_alarms(bus) == []

    def test_emit_writes_warning_trace_event_and_counter(self):
        bus = bus_with_gauge([1.0, 9.0, 9.0], labels={"pool": "p"})
        manager = self._manager()
        with scoped_trace() as trace, scoped_registry() as registry:
            manager.emit(manager.open_alarms(bus))
        events = [e for e in trace.events() if e.name == "alarm_open_at_exit"]
        assert len(events) == 1
        assert events[0].kind == "warning"
        assert events[0].fields["rule"] == "hot"
        snapshot = registry.snapshot()["alarms_total"]
        ((entry,),) = [snapshot["series"]]
        assert entry["labels"] == {"rule": "hot", "state": "open_at_exit"}

    def test_open_doc_validates_and_summarizes(self):
        bus = bus_with_gauge([1.0, 9.0, 9.0])
        manager = self._manager()
        open_events = manager.open_alarms(bus)
        for event in open_events:
            validate_timeseries_doc(event.to_doc())
        counts = manager.summarize(manager.evaluate(bus) + open_events)
        assert counts["overload_fires"] == 1
        assert counts["open_at_exit"] == 1
