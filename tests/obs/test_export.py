"""Tests for the Prometheus exporter and the run manifest."""

import json

import pytest

from repro import __version__
from repro.obs import (
    MANIFEST_SCHEMA,
    PROMETHEUS_CONTENT_TYPE,
    MetricsRegistry,
    TraceLog,
    build_manifest,
    environment_fingerprint,
    inputs_hash,
    parse_prometheus_text,
    prometheus_text,
    write_manifest,
    write_prometheus,
)


def _populated_registry() -> MetricsRegistry:
    reg = MetricsRegistry()
    reg.counter("requests_total", help="seen requests").inc(12)
    reg.counter("picks_total", labels={"backend": "0"}).inc(3)
    reg.counter("picks_total", labels={"backend": "1"}).inc(4)
    reg.gauge("depth").set(2.5)
    h = reg.histogram("latency", start=0.001, factor=10.0, buckets=3)
    h.observe(0.0005)
    h.observe(0.5)
    reg.timer("solve_seconds").observe(0.002)
    return reg


class TestPrometheusText:
    def test_counter_and_gauge_lines(self):
        text = prometheus_text(_populated_registry())
        assert "# HELP requests_total seen requests" in text
        assert "# TYPE requests_total counter" in text
        assert "requests_total 12" in text
        assert 'picks_total{backend="0"} 3' in text
        assert 'picks_total{backend="1"} 4' in text
        assert "# TYPE depth gauge" in text
        assert "depth 2.5" in text

    def test_histogram_rendering(self):
        text = prometheus_text(_populated_registry())
        assert 'latency_bucket{le="0.001"} 1' in text
        assert 'latency_bucket{le="+Inf"} 2' in text
        assert "latency_sum 0.5005" in text
        assert "latency_count 2" in text

    def test_timer_renders_as_histogram(self):
        text = prometheus_text(_populated_registry())
        assert "# TYPE solve_seconds histogram" in text
        assert "solve_seconds_count 1" in text

    def test_empty_registry_renders_empty(self):
        assert prometheus_text(MetricsRegistry()) == ""

    def test_write_prometheus_creates_parents(self, tmp_path):
        path = write_prometheus(_populated_registry(), tmp_path / "a" / "m.prom")
        assert path.exists()
        assert "requests_total 12" in path.read_text()


def _unescape_label_value(value: str) -> str:
    """Inverse of the text-format label escaping, per the exposition spec."""
    out = []
    it = iter(value)
    for ch in it:
        if ch != "\\":
            out.append(ch)
            continue
        nxt = next(it)
        out.append({"n": "\n", '"': '"', "\\": "\\"}[nxt])
    return "".join(out)


class TestPrometheusEscaping:
    def test_label_values_escaped(self):
        reg = MetricsRegistry()
        reg.counter("x", labels={"svc": 'a"b\n\\'}).inc()
        text = prometheus_text(reg)
        assert 'x{svc="a\\"b\\n\\\\"} 1' in text
        # No raw newline may survive inside a sample line.
        sample = [l for l in text.splitlines() if l.startswith("x{")]
        assert len(sample) == 1

    def test_label_round_trip(self):
        nasty = 'quote:" backslash:\\ newline:\nend'
        reg = MetricsRegistry()
        reg.counter("y", labels={"k": nasty}).inc()
        line = [l for l in prometheus_text(reg).splitlines() if l.startswith("y{")][0]
        escaped = line[line.index('"') + 1 : line.rindex('"')]
        assert _unescape_label_value(escaped) == nasty

    def test_help_escapes_newline_and_backslash(self):
        reg = MetricsRegistry()
        reg.counter("z", help="line1\nline2 \\ slash").inc()
        text = prometheus_text(reg)
        assert "# HELP z line1\\nline2 \\\\ slash" in text

    def test_plain_values_unchanged(self):
        reg = MetricsRegistry()
        reg.counter("plain", help="simple", labels={"a": "b"}).inc()
        text = prometheus_text(reg)
        assert '# HELP plain simple' in text
        assert 'plain{a="b"} 1' in text


class TestParsePrometheusText:
    """Round-trip conformance: everything we render must parse back."""

    def test_round_trip_families(self):
        families = parse_prometheus_text(prometheus_text(_populated_registry()))
        assert families["requests_total"]["kind"] == "counter"
        assert families["requests_total"]["help"] == "seen requests"
        assert families["requests_total"]["samples"] == [
            ("requests_total", {}, 12.0)
        ]
        assert families["depth"]["kind"] == "gauge"
        # Families registered without help self-describe with their name.
        assert families["picks_total"]["help"] == "picks_total"
        labelled = {
            labels["backend"]: value
            for _, labels, value in families["picks_total"]["samples"]
        }
        assert labelled == {"0": 3.0, "1": 4.0}

    def test_round_trip_histogram_and_timer(self):
        families = parse_prometheus_text(prometheus_text(_populated_registry()))
        assert families["latency"]["kind"] == "histogram"
        bucket_les = [
            labels["le"]
            for name, labels, _ in families["latency"]["samples"]
            if name == "latency_bucket"
        ]
        assert bucket_les[-1] == "+Inf"
        names = {name for name, _, _ in families["latency"]["samples"]}
        assert names == {"latency_bucket", "latency_sum", "latency_count"}
        assert families["solve_seconds"]["kind"] == "histogram"

    def test_round_trip_nasty_label_values(self):
        nasty = 'quote:" backslash:\\ newline:\nend'
        reg = MetricsRegistry()
        reg.counter("y", labels={"k": nasty}).inc()
        families = parse_prometheus_text(prometheus_text(reg))
        ((_, labels, value),) = families["y"]["samples"]
        assert labels == {"k": nasty}
        assert value == 1.0

    def test_empty_text_parses_empty(self):
        assert parse_prometheus_text("") == {}

    def test_content_type_constant(self):
        assert PROMETHEUS_CONTENT_TYPE.startswith("text/plain; version=0.0.4")

    @pytest.mark.parametrize(
        "text",
        [
            "no_type_declared 1\n",
            "# TYPE x counter\n# TYPE x counter\nx 1\n",
            "# HELP x one\n# HELP x two\n# TYPE x counter\nx 1\n",
            "# TYPE x widget\nx 1\n",
            "# HELP x h\n# TYPE x counter\nx notanumber\n",
            "# HELP x h\n# TYPE x counter\nx{k=unquoted} 1\n",
            "# HELP x h\n# TYPE x counter\n",  # TYPE without samples
            "# HELP x h\n# TYPE x counter\nx_sum 1\nx 1\n",  # suffix on counter
            "# TYPE x counter\nx 1\n",  # missing HELP
            "# HELP x h\n",  # HELP without TYPE
        ],
    )
    def test_rejects_malformed(self, text):
        with pytest.raises(ValueError):
            parse_prometheus_text(text)


class TestEnvironmentFingerprint:
    def test_fields(self):
        fp = environment_fingerprint()
        assert fp["python"].count(".") >= 1
        assert fp["implementation"]
        assert fp["cpu_count"] >= 1
        assert fp["numpy"] is not None

    def test_json_serialisable(self):
        json.dumps(environment_fingerprint())


class TestInputsHash:
    def test_stable_across_key_order(self):
        assert inputs_hash({"a": 1, "b": [2, 3]}) == inputs_hash({"b": [2, 3], "a": 1})

    def test_sensitive_to_values(self):
        assert inputs_hash({"a": 1}) != inputs_hash({"a": 2})

    def test_known_shape(self):
        digest = inputs_hash({})
        assert len(digest) == 64
        assert int(digest, 16) >= 0


class TestManifest:
    def test_fields(self):
        reg = _populated_registry()
        trace = TraceLog()
        trace.emit("e")
        manifest = build_manifest(
            {"experiments": ["table1"], "seed": 7},
            seed=7,
            wall_time_s=1.25,
            registry=reg,
            trace=trace,
            extra={"note": "test"},
        )
        assert manifest["schema"] == MANIFEST_SCHEMA
        assert manifest["model_version"] == __version__
        assert manifest["seed"] == 7
        assert manifest["inputs_hash"] == inputs_hash({"experiments": ["table1"], "seed": 7})
        assert manifest["wall_time_s"] == 1.25
        assert manifest["metrics"]["requests_total"]["series"][0]["value"] == 12.0
        assert manifest["trace"] == {
            "events": 1,
            "emitted": 1,
            "dropped": 0,
            "dropped_by_kind": {},
            "capacity": trace.capacity,
        }
        assert manifest["environment"]["python"]
        assert manifest["note"] == "test"

    def test_trace_overflow_detectable(self):
        trace = TraceLog(capacity=4)
        for i in range(10):
            trace.emit("e", i=i)
        manifest = build_manifest({}, trace=trace)
        assert manifest["trace"]["capacity"] == 4
        assert manifest["trace"]["emitted"] == 10
        assert manifest["trace"]["dropped"] == 6
        assert manifest["trace"]["dropped_by_kind"] == {"event": 6}
        assert manifest["trace"]["events"] == 4

    def test_same_inputs_same_hash(self):
        a = build_manifest({"x": 1}, seed=1)
        b = build_manifest({"x": 1}, seed=99)
        assert a["inputs_hash"] == b["inputs_hash"]

    def test_write_manifest_is_valid_json(self, tmp_path):
        manifest = build_manifest({"x": 1}, seed=1)
        path = write_manifest(manifest, tmp_path / "out" / "run_manifest.json")
        loaded = json.loads(path.read_text())
        assert loaded["inputs_hash"] == manifest["inputs_hash"]
        assert loaded["schema"] == MANIFEST_SCHEMA
