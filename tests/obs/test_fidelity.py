"""Paper-fidelity scoreboard: tolerance arithmetic, verdicts, artifacts."""

import json

import pytest

from repro.obs import fidelity
from repro.obs.fidelity import (
    FIDELITY_SCHEMA,
    Expectation,
    Scoreboard,
    build_fidelity_artifact,
    check_expectations,
    evaluate_summaries,
    load_fidelity_artifact,
    load_results_summaries,
    scoreboard_table,
    validate_fidelity_artifact,
    write_fidelity_artifact,
)


class TestExpectationValidation:
    def test_unknown_op_rejected(self):
        with pytest.raises(ValueError, match="op must be one of"):
            Expectation("m", 1.0, op="eq")

    def test_negative_tolerances_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            Expectation("m", 1.0, abs_tol=-0.1)
        with pytest.raises(ValueError, match="non-negative"):
            Expectation("m", 1.0, rel_tol=-0.1)

    def test_drift_factor_below_one_rejected(self):
        with pytest.raises(ValueError, match="drift_factor"):
            Expectation("m", 1.0, drift_factor=0.5)

    def test_bool_takes_no_tolerance(self):
        with pytest.raises(ValueError, match="no tolerance"):
            Expectation("m", True, op="bool", abs_tol=0.1)

    def test_tolerance_is_max_of_abs_and_rel(self):
        assert Expectation("m", 10.0, abs_tol=0.3, rel_tol=0.05).tolerance == 0.5
        assert Expectation("m", 10.0, abs_tol=0.7, rel_tol=0.05).tolerance == 0.7
        # rel_tol scales with |expected|, so negative expectations work too.
        assert Expectation("m", -10.0, rel_tol=0.05).tolerance == 0.5


class TestToleranceBoundaries:
    """Verdict grading exactly at the tolerance and drift boundaries."""

    # 0.25 and its multiples are binary-exact, so the boundaries below test
    # the grading logic rather than IEEE-754 rounding accidents.
    def exp(self, **kwargs):
        kwargs.setdefault("abs_tol", 0.25)
        return Expectation("m", 1.0, **kwargs)

    def test_exactly_at_tolerance_matches(self):
        assert self.exp().check(1.25)[0] == "match"
        assert self.exp().check(0.75)[0] == "match"

    def test_just_beyond_tolerance_drifts(self):
        assert self.exp().check(1.2500001)[0] == "drift"

    def test_exactly_at_drift_boundary_drifts(self):
        # drift_factor=3 -> the band ends at deviation 0.75.
        assert self.exp().check(1.75)[0] == "drift"

    def test_beyond_drift_boundary_fails(self):
        assert self.exp().check(1.7500001)[0] == "fail"
        assert self.exp().check(5.0)[0] == "fail"

    def test_zero_tolerance_has_empty_drift_band(self):
        exact = Expectation("m", 3)
        assert exact.check(3)[0] == "match"
        assert exact.check(4)[0] == "fail"  # no drift verdict possible

    def test_custom_drift_factor(self):
        wide = self.exp(drift_factor=10.0)
        assert wide.check(2.0)[0] == "drift"  # deviation 1.0 <= 10 * 0.25
        assert wide.check(3.6)[0] == "fail"


class TestOps:
    def test_ge_overshoot_always_matches(self):
        exp = Expectation("m", 1.7, op="ge", abs_tol=0.1)
        assert exp.check(99.0)[0] == "match"
        assert exp.check(1.7)[0] == "match"

    def test_ge_shortfall_graded_against_tolerance(self):
        exp = Expectation("m", 1.7, op="ge", abs_tol=0.1)
        assert exp.check(1.6)[0] == "match"  # shortfall 0.1 == tol
        assert exp.check(1.5)[0] == "drift"
        assert exp.check(1.3)[0] == "fail"

    def test_le_is_symmetric_to_ge(self):
        exp = Expectation("m", 0.1, op="le", abs_tol=0.02)
        assert exp.check(0.01)[0] == "match"  # undershooting a cap is fine
        assert exp.check(0.12)[0] == "match"
        assert exp.check(0.15)[0] == "drift"
        assert exp.check(0.5)[0] == "fail"

    def test_bool_exact(self):
        exp = Expectation("m", True, op="bool")
        assert exp.check(True)[0] == "match"
        assert exp.check(False)[0] == "fail"

    def test_bool_rejects_non_bool(self):
        assert Expectation("m", True, op="bool").check(1)[0] == "fail"

    def test_numeric_rejects_bool_and_strings(self):
        assert Expectation("m", 1.0).check(True)[0] == "fail"
        assert Expectation("m", 1.0).check("1.0")[0] == "fail"

    def test_missing_and_nan_fail(self):
        verdict, detail = Expectation("m", 1.0).check(None)
        assert (verdict, detail) == ("fail", "metric missing from summary")
        assert Expectation("m", 1.0).check(float("nan"))[0] == "fail"


class TestDeclarationRegistry:
    def test_declare_and_read_back(self, monkeypatch):
        monkeypatch.setattr(fidelity, "_EXPECTATIONS", {})
        fidelity.declare_expectations("e1", Expectation("m", 1))
        assert fidelity.declared_experiments() == ["e1"]
        assert fidelity.expectations_for("e1")[0].metric == "m"
        assert fidelity.expectations_for("absent") == ()

    def test_double_declaration_rejected(self, monkeypatch):
        monkeypatch.setattr(fidelity, "_EXPECTATIONS", {})
        fidelity.declare_expectations("e1", Expectation("m", 1))
        with pytest.raises(ValueError, match="already declared"):
            fidelity.declare_expectations("e1", Expectation("m2", 1))

    def test_empty_declaration_rejected(self):
        with pytest.raises(ValueError, match="no expectations"):
            fidelity.declare_expectations("empty")

    def test_duplicate_metrics_rejected(self, monkeypatch):
        monkeypatch.setattr(fidelity, "_EXPECTATIONS", {})
        with pytest.raises(ValueError, match="duplicate"):
            fidelity.declare_expectations(
                "e1", Expectation("m", 1), Expectation("m", 2)
            )

    def test_experiment_modules_declare_expectations(self):
        # Importing the runner pulls in every experiment module; all of them
        # must declare, and the paper's headline metrics must be present.
        from repro.experiments import runner  # noqa: F401

        declared = fidelity.declared_experiments()
        assert "table1" in declared and "fig10" in declared
        assert "fig11" in declared and "fig12" in declared
        metrics = {
            (e, exp.metric)
            for e in declared
            for exp in fidelity.expectations_for(e)
        }
        assert ("fig10", "servers_saved_fraction") in metrics  # 50% servers
        assert ("fig12", "power_saving_fraction") in metrics  # 53% power
        assert ("fig11", "cpu_util_improvement_measured") in metrics  # 1.7x


class TestEvaluation:
    def exps(self):
        return [Expectation("a", 1.0, abs_tol=0.1), Expectation("b", True, op="bool")]

    def test_check_expectations_grades_each_metric(self):
        verdicts = check_expectations("e", {"a": 1.05, "b": False}, self.exps())
        assert [(v.metric, v.verdict) for v in verdicts] == [
            ("a", "match"),
            ("b", "fail"),
        ]
        assert verdicts[0].experiment == "e"
        assert verdicts[0].tolerance == 0.1

    def test_missing_summary_fails_all(self):
        verdicts = check_expectations("e", None, self.exps())
        assert all(v.verdict == "fail" for v in verdicts)
        assert all(v.detail == "experiment summary missing" for v in verdicts)

    def test_evaluate_defaults_to_present_experiments(self, monkeypatch):
        monkeypatch.setattr(fidelity, "_EXPECTATIONS", {})
        fidelity.declare_expectations("here", Expectation("m", 1))
        fidelity.declare_expectations("absent", Expectation("m", 1))
        scoreboard = evaluate_summaries({"here": {"m": 1}})
        assert scoreboard.experiments == ["here"]
        assert scoreboard.overall == "match"

    def test_evaluate_demanded_experiment_missing_fails(self, monkeypatch):
        monkeypatch.setattr(fidelity, "_EXPECTATIONS", {})
        fidelity.declare_expectations("absent", Expectation("m", 1))
        scoreboard = evaluate_summaries({}, experiments=["absent"])
        assert scoreboard.overall == "fail"

    def test_overall_is_worst_verdict(self):
        exp = Expectation("m", 1.0, abs_tol=0.1)
        match = check_expectations("e", {"m": 1.0}, [exp])
        drift = check_expectations("e", {"m": 1.2}, [exp])
        fail = check_expectations("e", {"m": 9.9}, [exp])
        assert Scoreboard(verdicts=tuple(match)).overall == "match"
        assert Scoreboard(verdicts=tuple(match + drift)).overall == "drift"
        assert Scoreboard(verdicts=tuple(match + drift + fail)).overall == "fail"
        board = Scoreboard(verdicts=tuple(match + drift + fail))
        assert board.counts == {"match": 1, "drift": 1, "fail": 1}
        assert len(board.drifts) == len(board.fails) == 1


class TestLoadResultsSummaries:
    def test_reads_experiment_artifacts_only(self, tmp_path):
        (tmp_path / "e1.json").write_text(
            json.dumps({"experiment": "e1", "summary": {"m": 1}})
        )
        (tmp_path / "BENCH_x.json").write_text("{}")
        (tmp_path / "FIDELITY_x.json").write_text("{}")
        (tmp_path / "run_manifest.json").write_text(json.dumps({"schema": "x"}))
        assert load_results_summaries(tmp_path) == {"e1": {"m": 1}}

    def test_missing_directory_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_results_summaries(tmp_path / "nope")

    def test_corrupt_json_raises(self, tmp_path):
        (tmp_path / "bad.json").write_text("{not json")
        with pytest.raises(json.JSONDecodeError):
            load_results_summaries(tmp_path)


class TestArtifact:
    def board(self):
        return Scoreboard(
            verdicts=tuple(
                check_expectations(
                    "e",
                    {"a": 1.0, "b": 3.0},
                    [Expectation("a", 1.0), Expectation("b", 1.0, abs_tol=0.5)],
                )
            )
        )

    def test_build_and_validate(self):
        doc = build_fidelity_artifact(
            self.board(), git_sha="abc", created_utc="2026-08-06T00:00:00+00:00"
        )
        validate_fidelity_artifact(doc)
        assert doc["schema"] == FIDELITY_SCHEMA
        assert doc["overall"] == "fail"  # b deviates 2.0 > 3 * 0.5
        assert doc["counts"] == {"match": 1, "drift": 0, "fail": 1}
        assert doc["git_sha"] == "abc"
        assert [v["metric"] for v in doc["verdicts"]] == ["a", "b"]

    def test_extra_keys_merged(self):
        doc = build_fidelity_artifact(self.board(), extra={"inputs": {"seed": 7}})
        assert doc["inputs"] == {"seed": 7}

    def test_validation_rejects_bad_docs(self):
        with pytest.raises(ValueError, match="schema"):
            validate_fidelity_artifact({"schema": "other/v9"})
        doc = build_fidelity_artifact(self.board())
        del doc["overall"]
        with pytest.raises(ValueError, match="overall"):
            validate_fidelity_artifact(doc)
        doc = build_fidelity_artifact(self.board())
        doc["verdicts"][0]["verdict"] = "meh"
        with pytest.raises(ValueError, match="meh"):
            validate_fidelity_artifact(doc)

    def test_write_is_append_only_and_round_trips(self, tmp_path):
        doc = build_fidelity_artifact(
            self.board(), git_sha="abc", created_utc="2026-08-06T00:00:00+00:00"
        )
        first = write_fidelity_artifact(doc, tmp_path)
        second = write_fidelity_artifact(doc, tmp_path)
        assert first.name == "FIDELITY_20260806_abc.json"
        assert second.name == "FIDELITY_20260806_abc_2.json"
        assert load_fidelity_artifact(first)["overall"] == doc["overall"]

    def test_load_rejects_corrupt_artifact(self, tmp_path):
        path = tmp_path / "FIDELITY_x.json"
        path.write_text("{not json")
        with pytest.raises(ValueError, match="invalid JSON"):
            load_fidelity_artifact(path)
        with pytest.raises(FileNotFoundError):
            load_fidelity_artifact(tmp_path / "absent.json")


class TestScoreboardTable:
    def test_renders_rows_and_summary_line(self):
        verdicts = check_expectations(
            "e", {"a": 1.0}, [Expectation("a", 1.0, source="Fig. X")]
        )
        text = scoreboard_table(Scoreboard(verdicts=tuple(verdicts)))
        assert "experiment" in text and "verdict" in text
        assert "fidelity: match (1 match, 0 drift, 0 fail over 1 experiments)" in text

    def test_fail_is_shouted(self):
        verdicts = check_expectations("e", {}, [Expectation("a", 1.0)])
        text = scoreboard_table(Scoreboard(verdicts=tuple(verdicts)))
        assert "FAIL" in text

    def test_empty_scoreboard(self):
        text = scoreboard_table(Scoreboard(verdicts=()))
        assert "fidelity: match" in text
