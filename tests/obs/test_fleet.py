"""Fleet aggregation: scenario economics, deltas, and the FLEET artifact."""

import json

import pytest

try:
    from hypothesis import given, settings
    from hypothesis import strategies as st

    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - hypothesis ships in the test extra
    HAVE_HYPOTHESIS = False

from repro.obs import TraceLog, build_manifest
from repro.obs.fleet import (
    FLEET_SCHEMA,
    HOURS_PER_YEAR,
    AuditAssumptions,
    bench_trend,
    build_fleet_artifact,
    build_fleet_summary,
    load_fleet_artifact,
    per_experiment_fidelity,
    scenario_costs,
    scenario_deltas,
    validate_fleet_artifact,
    write_fleet_artifact,
)
from repro.obs.ledger import build_ledger

# Hand-computed fixture: 8 dedicated servers at 2 kW vs 4 consolidated at
# 1 kW, priced at $0.10/kWh, 500 gCO2/kWh, $2400/server over 4 years, for
# one mean year (8766 h).  Dedicated: 17532 kWh, $1753.20 energy, $4800
# capex, $6553.20 total, 8766 kg.  Consolidated is exactly half of each.
FIG12 = {
    "dedicated_servers": 8,
    "consolidated_servers": 4,
    "dedicated_mean_power_W": 2000.0,
    "consolidated_mean_power_W": 1000.0,
}
ASSUMPTIONS = AuditAssumptions(
    price_usd_per_kwh=0.10,
    carbon_g_per_kwh=500.0,
    server_capex_usd=2400.0,
    server_lifetime_years=4.0,
    horizon_hours=HOURS_PER_YEAR,
)


class TestAssumptions:
    def test_defaults_are_recorded_fields(self):
        d = AuditAssumptions().as_dict()
        assert set(d) == {
            "price_usd_per_kwh",
            "carbon_g_per_kwh",
            "server_capex_usd",
            "server_lifetime_years",
            "horizon_hours",
        }

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"price_usd_per_kwh": -0.01},
            {"carbon_g_per_kwh": -1.0},
            {"server_capex_usd": -5.0},
            {"server_lifetime_years": 0.0},
            {"horizon_hours": -1.0},
        ],
    )
    def test_rejects_nonsense(self, kwargs):
        with pytest.raises(ValueError):
            AuditAssumptions(**kwargs)

    def test_from_mapping_roundtrip_and_ignores_extras(self):
        a = AuditAssumptions.from_mapping(
            dict(ASSUMPTIONS.as_dict(), unrelated="x")
        )
        assert a == ASSUMPTIONS
        assert AuditAssumptions.from_mapping(None) == AuditAssumptions()


class TestScenarioMath:
    def test_hand_computed_dedicated_fixture(self):
        scenarios = scenario_costs({"fig12": FIG12}, ASSUMPTIONS)
        ded = scenarios["dedicated"]
        assert ded.servers == 8
        assert ded.energy_kwh == pytest.approx(17532.0)
        assert ded.energy_cost_usd == pytest.approx(1753.20)
        assert ded.capex_usd == pytest.approx(4800.0)
        assert ded.total_cost_usd == pytest.approx(6553.20)
        assert ded.carbon_kg == pytest.approx(8766.0)

    def test_consolidated_is_exactly_half(self):
        scenarios = scenario_costs({"fig12": FIG12}, ASSUMPTIONS)
        ded, con = scenarios["dedicated"], scenarios["consolidated"]
        for field in ("energy_kwh", "energy_cost_usd", "capex_usd",
                      "total_cost_usd", "carbon_kg"):
            assert getattr(con, field) == pytest.approx(getattr(ded, field) / 2)

    def test_hand_computed_delta(self):
        deltas = scenario_deltas(scenario_costs({"fig12": FIG12}, ASSUMPTIONS))
        d = deltas["consolidated_vs_dedicated"]
        assert d["servers_saved"] == 4
        assert d["power_saved_w"] == pytest.approx(1000.0)
        assert d["energy_saved_kwh"] == pytest.approx(8766.0)
        assert d["cost_saved_usd"] == pytest.approx(3276.60)
        assert d["carbon_saved_kg"] == pytest.approx(4383.0)
        assert d["cost_saved_fraction"] == pytest.approx(0.5)

    def test_projected_scenario_from_table1_and_fig11(self):
        summaries = {
            "table1": {"group2_N": 4},
            "fig11": {"consolidated_cpu_util": 0.343},
        }
        scenarios = scenario_costs(summaries, ASSUMPTIONS)
        # 4 servers x P(0.343) = 4 x (250 + 45*0.343) = 1061.74 W
        proj = scenarios["projected"]
        assert proj.servers == 4
        assert proj.mean_power_w == pytest.approx(4 * (250.0 + 45.0 * 0.343))
        assert "analytic" in proj.source

    def test_missing_energy_fields_degrade_with_note(self):
        notes = []
        scenarios = scenario_costs(
            {"fig12": {"power_saving_fraction": 0.53}}, ASSUMPTIONS, notes
        )
        assert "dedicated" not in scenarios
        assert any("predates the energy fields" in n for n in notes)

    def test_empty_summaries_yield_no_scenarios(self):
        notes = []
        assert scenario_costs({}, ASSUMPTIONS, notes) == {}
        assert len(notes) == 2  # fig12 missing + projected inputs missing


if HAVE_HYPOTHESIS:
    finite = st.floats(min_value=0.0, max_value=1e5, allow_nan=False)

    class TestAggregationProperties:
        @settings(max_examples=50, deadline=None)
        @given(
            ded_n=st.integers(min_value=1, max_value=64),
            con_n=st.integers(min_value=1, max_value=64),
            ded_w=finite,
            con_w=finite,
            price=st.floats(min_value=0.0, max_value=10.0, allow_nan=False),
            carbon=st.floats(min_value=0.0, max_value=2000.0, allow_nan=False),
            horizon=st.floats(min_value=1.0, max_value=1e5, allow_nan=False),
        )
        def test_identities_hold(self, ded_n, con_n, ded_w, con_w, price,
                                 carbon, horizon):
            a = AuditAssumptions(
                price_usd_per_kwh=price,
                carbon_g_per_kwh=carbon,
                horizon_hours=horizon,
            )
            fig12 = {
                "dedicated_servers": ded_n,
                "consolidated_servers": con_n,
                "dedicated_mean_power_W": ded_w,
                "consolidated_mean_power_W": con_w,
            }
            scenarios = scenario_costs({"fig12": fig12}, a)
            for s in scenarios.values():
                assert s.energy_kwh == pytest.approx(
                    s.mean_power_w * horizon / 1000.0
                )
                assert s.energy_cost_usd == pytest.approx(s.energy_kwh * price)
                assert s.total_cost_usd == pytest.approx(
                    s.energy_cost_usd + s.capex_usd
                )
                assert s.carbon_kg == pytest.approx(
                    s.energy_kwh * carbon / 1000.0
                )
            ded, con = scenarios["dedicated"], scenarios["consolidated"]
            delta = scenario_deltas(scenarios)["consolidated_vs_dedicated"]
            assert delta["servers_saved"] == ded_n - con_n
            assert delta["cost_saved_usd"] == pytest.approx(
                ded.total_cost_usd - con.total_cost_usd, abs=0.01
            )
            assert delta["carbon_saved_kg"] == pytest.approx(
                ded.carbon_kg - con.carbon_kg, abs=0.1
            )


class TestFidelityAndBench:
    def test_per_experiment_fidelity_grid(self):
        doc = {
            "verdicts": [
                {"experiment": "fig12", "verdict": "match"},
                {"experiment": "fig12", "verdict": "drift"},
                {"experiment": "fig13", "verdict": "fail"},
                {"experiment": "fig13", "verdict": "match"},
            ]
        }
        grid = per_experiment_fidelity(doc)
        assert grid["fig12"] == {"match": 1, "drift": 1, "fail": 0,
                                 "overall": "drift"}
        assert grid["fig13"]["overall"] == "fail"
        assert per_experiment_fidelity(None) == {}

    def test_bench_trend_series(self):
        docs = [
            {
                "created_utc": "2026-08-01T00:00:00+00:00",
                "benchmarks": [
                    {"name": "a", "ok": True, "wall_s": {"median": 1.0}},
                    {"name": "b", "ok": False, "wall_s": {"median": 9.0}},
                ],
            },
            {
                "created_utc": "2026-08-02T00:00:00+00:00",
                "benchmarks": [
                    {"name": "a", "ok": True, "wall_s": {"median": 0.5}},
                ],
            },
        ]
        trend = bench_trend(docs)
        assert trend["points"] == 2
        assert trend["median_wall_s"] == {"a": [1.0, 0.5]}


def _ledger_dir(tmp_path, name="d", summaries=None, manifest=None):
    d = tmp_path / name
    d.mkdir()
    if manifest is not None:
        (d / "run_manifest.json").write_text(json.dumps(manifest))
    for exp, summary in (summaries or {}).items():
        (d / f"{exp}.json").write_text(
            json.dumps(
                {"experiment": exp, "title": exp, "summary": summary, "rows": 1}
            )
        )
    return d


class TestFleetSummary:
    def test_aggregates_measured_and_projected(self, tmp_path):
        d = _ledger_dir(
            tmp_path,
            summaries={
                "fig12": FIG12,
                "fig11": {"consolidated_cpu_util": 0.343},
                "table1": {"group2_N": 4},
            },
            manifest=build_manifest({"tool": "t"}, seed=2009),
        )
        summary = build_fleet_summary(build_ledger([d]), ASSUMPTIONS)
        assert set(summary["scenarios"]) == {
            "dedicated", "consolidated", "projected"
        }
        assert set(summary["deltas"]) == {
            "consolidated_vs_dedicated",
            "projected_vs_dedicated",
            "consolidated_vs_projected",
        }
        assert summary["decision"]["recommendation"] == "consolidated"
        assert "Consolidate" in summary["decision"]["headline"]
        assert summary["seeds"] == [2009]

    def test_mixed_env_results_excluded_with_warning(self, tmp_path):
        m1 = build_manifest({"tool": "t"}, seed=1)
        m2 = build_manifest({"tool": "t"}, seed=2)
        m2["environment"] = dict(m2["environment"], git_sha="othermachine")
        a = _ledger_dir(
            tmp_path, "a",
            summaries={"fig12": FIG12, "fig11": {"consolidated_cpu_util": 0.3},
                       "table1": {"group2_N": 4}},
            manifest=m1,
        )
        b = _ledger_dir(
            tmp_path, "b", summaries={"fig10": {"x": 1.0}}, manifest=m2
        )
        trace = TraceLog()
        summary = build_fleet_summary(
            build_ledger([a, b]), ASSUMPTIONS, trace=trace
        )
        assert [e["experiment"] for e in summary["excluded"]] == ["fig10"]
        assert any(
            e.name == "fleet_env_mismatch" and e.kind == "warning"
            for e in trace.events()
        )
        # the dominant-environment results still price normally
        assert "dedicated" in summary["scenarios"]

    def test_no_fig12_yields_insufficient_data_decision(self, tmp_path):
        d = _ledger_dir(tmp_path, summaries={"fig10": {"x": 1.0}})
        summary = build_fleet_summary(build_ledger([d]), ASSUMPTIONS)
        assert summary["decision"]["recommendation"] is None
        assert "insufficient data" in summary["decision"]["headline"]


class TestFleetArtifact:
    def _artifact(self, tmp_path):
        d = _ledger_dir(
            tmp_path,
            summaries={"fig12": FIG12},
            manifest=build_manifest({"tool": "t"}, seed=2009),
        )
        ledger = build_ledger([d])
        summary = build_fleet_summary(ledger, ASSUMPTIONS)
        return build_fleet_artifact(
            summary, ledger, git_sha="abc123",
            created_utc="2026-08-08T00:00:00+00:00",
        )

    def test_build_and_validate(self, tmp_path):
        doc = self._artifact(tmp_path)
        validate_fleet_artifact(doc)
        assert doc["schema"] == FLEET_SCHEMA
        assert doc["ledger"]["counts"]["result"] == 1
        assert len(doc["inputs_hash"]) == 64

    def test_inputs_hash_covers_runs_not_assumptions(self, tmp_path):
        d = _ledger_dir(tmp_path, summaries={"fig12": FIG12})
        ledger = build_ledger([d])
        doc_a = build_fleet_artifact(
            build_fleet_summary(ledger, ASSUMPTIONS), ledger, git_sha="x"
        )
        doc_b = build_fleet_artifact(
            build_fleet_summary(ledger, AuditAssumptions()), ledger, git_sha="x"
        )
        assert doc_a["inputs_hash"] == doc_b["inputs_hash"]
        assert doc_a["assumptions"] != doc_b["assumptions"]

    def test_write_load_roundtrip_append_only(self, tmp_path):
        doc = self._artifact(tmp_path)
        p1 = write_fleet_artifact(doc, tmp_path)
        p2 = write_fleet_artifact(doc, tmp_path)
        assert p1 != p2  # append-only: never clobbers
        assert p1.name.startswith("FLEET_20260808_abc123")
        loaded = load_fleet_artifact(p1)
        assert loaded["scenarios"] == doc["scenarios"]

    def test_validation_failures(self, tmp_path):
        with pytest.raises(ValueError, match="unexpected schema"):
            validate_fleet_artifact({"schema": "repro.fleet/v99"})
        doc = self._artifact(tmp_path)
        del doc["decision"]
        with pytest.raises(ValueError, match="missing 'decision'"):
            validate_fleet_artifact(doc)
        bad = tmp_path / "FLEET_bad.json"
        bad.write_text("{ nope")
        with pytest.raises(ValueError, match="invalid JSON"):
            load_fleet_artifact(bad)
        with pytest.raises(FileNotFoundError):
            load_fleet_artifact(tmp_path / "absent.json")
