"""Tests for noise-aware bench-artifact comparison."""

import json
import math

import pytest

from repro.obs import BENCH_SCHEMA, compare_artifacts, load_artifact, verdict_table


def _entry(name, medians, ok=True):
    wall = {
        "repeats": medians,
        "median": sorted(medians)[len(medians) // 2] if medians else None,
        "min": min(medians) if medians else None,
        "mean": sum(medians) / len(medians) if medians else None,
    }
    return {
        "name": name,
        "group": "g",
        "source": "s",
        "ok": ok,
        "error": None if ok else "Boom",
        "wall_s": wall,
        "cpu_s": dict(wall),
        "alloc": {"peak_bytes": 1},
    }


def _artifact(entries):
    return {
        "schema": BENCH_SCHEMA,
        "created_utc": "2026-08-06T00:00:00+00:00",
        "git_sha": "aaa",
        "model_version": "1.0.0",
        "environment": {"python": "3.x"},
        "warmup": 1,
        "repeats": 3,
        "selection": [],
        "inputs_hash": "0" * 64,
        "benchmarks": entries,
    }


class TestVerdicts:
    def test_within_band_unchanged(self):
        cmp = compare_artifacts(
            _artifact([_entry("a", [1.0, 1.0, 1.0])]),
            _artifact([_entry("a", [1.05, 1.05, 1.05])]),
            threshold=0.10,
        )
        (delta,) = cmp.deltas
        assert delta.verdict == "unchanged"
        assert delta.rel_change == pytest.approx(0.05)
        assert cmp.verdict == "no regression"

    def test_above_band_regression(self):
        cmp = compare_artifacts(
            _artifact([_entry("a", [1.0])]),
            _artifact([_entry("a", [1.3])]),
            threshold=0.10,
        )
        assert cmp.deltas[0].verdict == "regression"
        assert cmp.verdict == "regression"

    def test_below_band_improvement(self):
        cmp = compare_artifacts(
            _artifact([_entry("a", [1.0])]),
            _artifact([_entry("a", [0.5])]),
            threshold=0.10,
        )
        assert cmp.deltas[0].verdict == "improvement"
        assert cmp.verdict == "no regression"
        assert len(cmp.improvements) == 1

    def test_median_rides_out_single_noisy_repeat(self):
        # One wild repeat out of three must not flip the verdict.
        cmp = compare_artifacts(
            _artifact([_entry("a", [1.0, 1.0, 1.0])]),
            _artifact([_entry("a", [1.02, 5.0, 0.99])]),
            threshold=0.10,
        )
        assert cmp.deltas[0].verdict == "unchanged"

    def test_added_and_removed(self):
        cmp = compare_artifacts(
            _artifact([_entry("old", [1.0])]),
            _artifact([_entry("new", [1.0])]),
        )
        by_name = {d.name: d.verdict for d in cmp.deltas}
        assert by_name == {"old": "removed", "new": "added"}
        assert cmp.verdict == "no regression"

    def test_failed_benchmark_is_error(self):
        cmp = compare_artifacts(
            _artifact([_entry("a", [1.0])]),
            _artifact([_entry("a", [1.0], ok=False)]),
        )
        assert cmp.deltas[0].verdict == "error"
        assert len(cmp.errors) == 1

    def test_zero_baseline(self):
        cmp = compare_artifacts(
            _artifact([_entry("a", [0.0])]),
            _artifact([_entry("a", [0.1])]),
        )
        assert cmp.deltas[0].rel_change == math.inf
        assert cmp.deltas[0].verdict == "regression"

    def test_cpu_metric(self):
        base = _artifact([_entry("a", [1.0])])
        new = _artifact([_entry("a", [1.0])])
        new["benchmarks"][0]["cpu_s"]["median"] = 2.0
        assert compare_artifacts(base, new, metric="cpu_s").verdict == "regression"
        assert compare_artifacts(base, new, metric="wall_s").verdict == "no regression"

    def test_invalid_params(self):
        a = _artifact([])
        with pytest.raises(ValueError):
            compare_artifacts(a, a, threshold=-0.1)
        with pytest.raises(ValueError):
            compare_artifacts(a, a, metric="gpu_s")


class TestOutputs:
    def test_verdict_table_contents(self):
        cmp = compare_artifacts(
            _artifact([_entry("fast", [1.0]), _entry("slow", [1.0])]),
            _artifact([_entry("fast", [1.0]), _entry("slow", [2.0])]),
            threshold=0.25,
        )
        table = verdict_table(cmp)
        assert "verdict: regression (1 regressions, 0 improvements" in table
        assert "+100.0%" in table
        assert "slow" in table and "fast" in table

    def test_to_doc_round_trips_json(self):
        cmp = compare_artifacts(
            _artifact([_entry("a", [1.0])]), _artifact([_entry("a", [1.0])])
        )
        doc = json.loads(json.dumps(cmp.to_doc()))
        assert doc["verdict"] == "no regression"
        assert doc["deltas"][0]["name"] == "a"

    def test_to_doc_counts_every_verdict(self):
        cmp = compare_artifacts(
            _artifact([_entry("same", [1.0]), _entry("gone", [1.0])]),
            _artifact([_entry("same", [1.0]), _entry("new", [1.0])]),
        )
        counts = cmp.to_doc()["counts"]
        assert counts["unchanged"] == 1
        assert counts["removed"] == 1
        assert counts["added"] == 1
        assert counts["regression"] == 0
        assert sum(counts.values()) == len(cmp.deltas)


class TestLoadArtifact:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "BENCH_x.json"
        path.write_text(json.dumps(_artifact([_entry("a", [1.0])])))
        assert load_artifact(path)["benchmarks"][0]["name"] == "a"

    def test_missing_file(self, tmp_path):
        with pytest.raises(FileNotFoundError, match="no such bench artifact"):
            load_artifact(tmp_path / "nope.json")

    def test_invalid_json(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{nope")
        with pytest.raises(ValueError, match="invalid JSON"):
            load_artifact(path)

    def test_wrong_schema(self, tmp_path):
        path = tmp_path / "wrong.json"
        doc = _artifact([])
        doc["schema"] = "repro.run-manifest/v1"
        path.write_text(json.dumps(doc))
        with pytest.raises(ValueError, match="unexpected schema"):
            load_artifact(path)
