"""The instrumentation hooks across the stack record what they claim to."""

import numpy as np
import pytest

from repro.cluster.dispatcher import (
    LeastConnectionsDispatcher,
    RandomDispatcher,
    RoundRobinDispatcher,
)
from repro.core import ModelInputs, ResourceKind, ServiceSpec, UtilityAnalyticModel
from repro.obs import scoped_registry, scoped_trace
from repro.queueing.erlang import min_servers, min_servers_continuous
from repro.simulation.engine import Simulator


def _inputs() -> ModelInputs:
    web = ServiceSpec(
        "web",
        1200.0,
        {ResourceKind.CPU: 3360.0, ResourceKind.DISK_IO: 1420.0},
        {ResourceKind.CPU: 0.65, ResourceKind.DISK_IO: 0.8},
    )
    db = ServiceSpec("db", 80.0, {ResourceKind.CPU: 100.0}, {ResourceKind.CPU: 0.9})
    return ModelInputs((web, db), 0.01)


class TestEngineInstrumentation:
    def test_counts_executed_events_and_virtual_time(self):
        with scoped_registry() as reg:
            sim = Simulator()
            for t in (1.0, 2.0, 3.0):
                sim.schedule_at(t, lambda: None)
            sim.run()
            assert reg.counter("sim_events_executed_total").value == 3
            assert reg.gauge("sim_virtual_time").value == 3.0
            assert reg.gauge("sim_pending_events").value == 0

    def test_cancelled_events_counted_as_skips(self):
        with scoped_registry() as reg:
            sim = Simulator()
            ev = sim.schedule_at(1.0, lambda: None)
            sim.schedule_at(2.0, lambda: None)
            ev.cancel()
            sim.run()
            assert reg.counter("sim_events_executed_total").value == 1
            assert reg.counter("sim_events_skipped_total").value == 1

    def test_uninstrumented_simulator_records_nothing(self):
        sim = Simulator()  # constructed under the default null registry
        with scoped_registry() as reg:
            sim.schedule_at(1.0, lambda: None)
            sim.run()
            assert reg.snapshot() == {}


class TestPendingCounter:
    """O(1) pending must stay exact through schedule/cancel/pop cycles."""

    def test_schedule_and_drain(self):
        sim = Simulator()
        events = [sim.schedule_at(float(t), lambda: None) for t in range(1, 6)]
        assert sim.pending == 5
        events[0].cancel()
        events[0].cancel()  # double-cancel must not double-count
        assert sim.pending == 4
        sim.run()
        assert sim.pending == 0

    def test_late_cancel_of_fired_event_is_harmless(self):
        sim = Simulator()
        ev = sim.schedule_at(1.0, lambda: None)
        sim.schedule_at(2.0, lambda: None)
        sim.run(until=1.0)
        assert sim.pending == 1
        ev.cancel()  # already executed
        assert sim.pending == 1

    def test_cancel_inside_callback(self):
        sim = Simulator()
        later = sim.schedule_at(2.0, lambda: None)
        sim.schedule_at(1.0, later.cancel)
        sim.run()
        assert sim.pending == 0

    def test_pending_matches_heap_scan(self, rng):
        sim = Simulator()
        live = []
        for _ in range(200):
            action = rng.integers(0, 3)
            if action == 0 or not live:
                live.append(sim.schedule_in(float(rng.random()), lambda: None))
            elif action == 1:
                live.pop(int(rng.integers(0, len(live)))).cancel()
            else:
                sim.step()
            scan = sum(1 for e in sim._heap if not e.cancelled)
            assert sim.pending == scan


class TestDispatcherInstrumentation:
    def test_pick_counts_per_backend(self):
        with scoped_registry() as reg:
            d = RoundRobinDispatcher(3)
            for _ in range(6):
                d.pick()
            for backend in range(3):
                counter = reg.counter(
                    "dispatcher_picks_total",
                    labels={"policy": "RoundRobinDispatcher", "backend": str(backend)},
                )
                assert counter.value == 2
            imbalance = reg.gauge(
                "dispatcher_imbalance_ratio",
                labels={"policy": "RoundRobinDispatcher"},
            )
            assert imbalance.value == pytest.approx(1.0)

    def test_imbalance_gauge_tracks_skew(self):
        with scoped_registry() as reg:
            d = LeastConnectionsDispatcher(2)
            for _ in range(4):
                d.pick(in_flight=[0, 10])  # backend 0 always wins
            imbalance = reg.gauge(
                "dispatcher_imbalance_ratio",
                labels={"policy": "LeastConnectionsDispatcher"},
            )
            assert imbalance.value == pytest.approx(2.0)  # max=4, mean=2

    def test_disabled_registry_keeps_picks_cheap_and_silent(self):
        d = RoundRobinDispatcher(2)
        assert [d.pick() for _ in range(4)] == [0, 1, 0, 1]
        assert not d._instrumented


class TestRandomDispatcherSeeding:
    def test_unseeded_fallback_emits_trace_warning(self):
        with scoped_trace() as trace:
            RandomDispatcher(3)
            (event,) = trace.events()
            assert event.kind == "warning"
            assert event.name == "dispatcher.unseeded_rng"
            assert event.fields["backends"] == 3

    def test_explicit_rng_stays_silent_and_reproducible(self):
        with scoped_trace() as trace:
            a = RandomDispatcher(5, rng=np.random.default_rng(42))
            b = RandomDispatcher(5, rng=np.random.default_rng(42))
            assert trace.events() == []
        assert [a.pick() for _ in range(20)] == [b.pick() for _ in range(20)]


class TestErlangInstrumentation:
    def test_recurrence_inversion_metrics(self):
        with scoped_registry() as reg:
            n = min_servers(5.0, 0.01)
            calls = reg.counter(
                "erlang_inversion_calls_total", labels={"method": "recurrence"}
            )
            iterations = reg.counter(
                "erlang_inversion_iterations_total", labels={"method": "recurrence"}
            )
            timer = reg.timer(
                "erlang_inversion_seconds", labels={"method": "recurrence"}
            )
            assert calls.value == 1
            assert iterations.value == n  # scan increments once per server
            assert timer.count == 1

    def test_bisection_inversion_metrics(self):
        with scoped_registry() as reg:
            min_servers_continuous(5.0, 0.01)
            calls = reg.counter(
                "erlang_inversion_calls_total", labels={"method": "bisection"}
            )
            iterations = reg.counter(
                "erlang_inversion_iterations_total", labels={"method": "bisection"}
            )
            assert calls.value == 1
            assert iterations.value > 0

    def test_agreement_is_not_perturbed_by_instrumentation(self):
        with scoped_registry():
            assert min_servers(11.8, 0.01) == min_servers_continuous(11.8, 0.01)


class TestModelInstrumentation:
    def test_solve_timer_and_counter(self):
        with scoped_registry() as reg:
            UtilityAnalyticModel(_inputs()).solve()
            UtilityAnalyticModel(_inputs(), load_model="offered").solve()
            assert (
                reg.counter("model_solves_total", labels={"load_model": "paper"}).value
                == 1
            )
            assert (
                reg.counter(
                    "model_solves_total", labels={"load_model": "offered"}
                ).value
                == 1
            )
            timer = reg.timer("model_solve_seconds", labels={"load_model": "paper"})
            assert timer.count == 1
            assert timer.total_seconds > 0.0

    def test_solution_identical_with_and_without_observability(self):
        plain = UtilityAnalyticModel(_inputs()).solve()
        with scoped_registry():
            observed = UtilityAnalyticModel(_inputs()).solve()
        assert plain.dedicated_servers == observed.dedicated_servers
        assert plain.consolidated_servers == observed.consolidated_servers
        assert plain.consolidated_load == observed.consolidated_load
