"""Unit tests for the structured trace log."""

import json

import pytest

from repro.obs import NullTraceLog, TraceLog, get_trace, scoped_trace, set_trace
from repro.simulation.engine import Simulator


class TestTraceLog:
    def test_emit_records_fields(self):
        log = TraceLog()
        log.emit("arrival", service="web", n=3)
        (event,) = log.events()
        assert event.kind == "event"
        assert event.name == "arrival"
        assert event.fields == {"service": "web", "n": 3}

    def test_warning_kind(self):
        log = TraceLog()
        log.warning("unseeded_rng", policy="random")
        assert log.events()[0].kind == "warning"

    def test_ring_buffer_drops_oldest(self):
        log = TraceLog(capacity=3)
        for i in range(5):
            log.emit("e", i=i)
        assert len(log) == 3
        assert [e.fields["i"] for e in log.events()] == [2, 3, 4]
        assert log.emitted == 5
        assert log.dropped == 2

    def test_drops_counted_per_kind(self):
        log = TraceLog(capacity=2)
        log.emit("a", kind="warning")
        log.emit("b")  # fills the ring
        log.emit("c")  # evicts the warning
        log.emit("d")  # evicts b (kind "event")
        assert log.dropped_by_kind == {"warning": 1, "event": 1}
        # The property hands out a copy, not the live dict.
        log.dropped_by_kind["warning"] = 99
        assert log.dropped_by_kind["warning"] == 1

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            TraceLog(capacity=0)

    def test_span_records_begin_end_pair(self):
        log = TraceLog()
        with log.span("solve", service="web") as fields:
            fields["servers"] = 4
        begin, end = log.events()
        assert begin.kind == "span_begin" and end.kind == "span_end"
        assert begin.fields["span"] == end.fields["span"]
        assert end.fields["duration_s"] >= 0.0
        assert end.fields["servers"] == 4
        assert end.fields["service"] == "web"

    def test_span_end_recorded_on_error(self):
        log = TraceLog()
        with pytest.raises(RuntimeError):
            with log.span("solve"):
                raise RuntimeError("boom")
        kinds = [e.kind for e in log.events()]
        assert kinds == ["span_begin", "span_end"]

    def test_nested_spans_get_distinct_ids(self):
        log = TraceLog()
        with log.span("outer"):
            with log.span("inner"):
                pass
        ids = {e.fields["span"] for e in log.events()}
        assert len(ids) == 2


class TestVirtualTimeClock:
    def test_attached_simulator_supplies_timestamps(self):
        log = TraceLog()
        sim = Simulator()
        log.attach_simulator(sim)
        sim.schedule_at(7.5, lambda: log.emit("fired"))
        sim.run()
        assert log.events()[0].ts == 7.5

    def test_detach_restores_wall_clock(self):
        log = TraceLog()
        sim = Simulator()
        log.attach_simulator(sim)
        log.detach_clock()
        log.emit("later")
        # Wall time is far beyond any virtual clock in these tests.
        assert log.events()[0].ts > 1e9


class TestExport:
    def test_jsonl_round_trip(self, tmp_path):
        log = TraceLog()
        log.emit("a", x=1)
        with log.span("s"):
            pass
        path = log.export_jsonl(tmp_path / "trace.jsonl")
        lines = path.read_text().strip().splitlines()
        docs = [json.loads(line) for line in lines]
        assert len(docs) == 3
        assert docs[0]["name"] == "a" and docs[0]["x"] == 1
        assert docs[1]["kind"] == "span_begin"
        assert docs[2]["kind"] == "span_end"

    def test_empty_log_exports_empty_file(self, tmp_path):
        path = TraceLog().export_jsonl(tmp_path / "empty.jsonl")
        assert path.read_text() == ""


class TestGlobalTrace:
    def test_default_is_disabled_and_swallows_api(self):
        log = get_trace()
        assert isinstance(log, NullTraceLog)
        log.emit("x")
        log.warning("y")
        with log.span("z") as fields:
            fields["ignored"] = 1
        assert log.events() == []
        assert log.to_jsonl() == ""

    def test_scoped_trace_installs_and_restores(self):
        before = get_trace()
        with scoped_trace() as log:
            assert get_trace() is log
            get_trace().emit("inside")
            assert len(log) == 1
        assert get_trace() is before

    def test_set_trace_none_installs_null(self):
        previous = set_trace(TraceLog())
        try:
            set_trace(None)
            assert not get_trace().enabled
        finally:
            set_trace(previous)
