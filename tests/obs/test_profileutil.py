"""Tests for the cProfile/tracemalloc span profiler."""

import json

import pytest

from repro.obs import PROFILE_SCHEMA, SpanProfiler, TraceLog
from repro.obs.trace import NullTraceLog


def _busy_work():
    return sum(i * i for i in range(20_000))


def _allocate():
    return [bytearray(1024) for _ in range(100)]


class TestSpanProfiler:
    def test_records_trace_span_pair(self):
        trace = TraceLog()
        profiler = SpanProfiler(trace_allocations=False)
        with profiler.span(trace, "work", stage="x") as fields:
            _busy_work()
            fields["note"] = "done"
        kinds = [e.kind for e in trace.events()]
        assert kinds == ["span_begin", "span_end"]
        end = trace.events()[1]
        assert end.fields["stage"] == "x"
        assert end.fields["note"] == "done"
        assert end.fields["duration_s"] > 0.0

    def test_hotspots_include_profiled_function(self):
        profiler = SpanProfiler(trace_allocations=False)
        with profiler.span(NullTraceLog(), "work"):
            _busy_work()
        functions = [row["function"] for row in profiler.hotspots()]
        assert any("_busy_work" in f for f in functions)
        top = profiler.hotspots()[0]
        assert top["cumtime_s"] >= 0.0
        assert top["calls"] >= 1

    def test_accumulates_across_spans(self):
        profiler = SpanProfiler(trace_allocations=False)
        trace = NullTraceLog()
        with profiler.span(trace, "a"):
            _busy_work()
        with profiler.span(trace, "b"):
            _busy_work()
        report = profiler.report()
        assert [s["name"] for s in report["spans"]] == ["a", "b"]

    def test_allocation_tracking(self):
        profiler = SpanProfiler(trace_allocations=True)
        with profiler.span(NullTraceLog(), "alloc"):
            data = _allocate()
        report = profiler.report()
        assert report["allocations"]["peak_bytes"] > 100 * 1024
        assert report["allocations"]["top"]
        assert any(
            "test_profileutil" in e["location"] for e in report["allocations"]["top"]
        )
        del data

    def test_allocations_disabled(self):
        profiler = SpanProfiler(trace_allocations=False)
        with profiler.span(NullTraceLog(), "x"):
            _allocate()
        report = profiler.report()
        assert report["allocations"]["enabled"] is False
        assert report["allocations"]["peak_bytes"] == 0
        assert report["allocations"]["top"] == []

    def test_top_n_limits_rows(self):
        profiler = SpanProfiler(top_n=3, trace_allocations=False)
        with profiler.span(NullTraceLog(), "x"):
            _busy_work()
        assert len(profiler.hotspots()) <= 3

    def test_invalid_top_n(self):
        with pytest.raises(ValueError):
            SpanProfiler(top_n=0)

    def test_exception_still_disables_profiler(self):
        trace = TraceLog()
        profiler = SpanProfiler(trace_allocations=True)
        with pytest.raises(RuntimeError):
            with profiler.span(trace, "boom"):
                raise RuntimeError("x")
        # span_end still recorded; a second span still works.
        assert [e.kind for e in trace.events()] == ["span_begin", "span_end"]
        with profiler.span(trace, "again"):
            pass

    def test_write_report(self, tmp_path):
        profiler = SpanProfiler(trace_allocations=False)
        with profiler.span(NullTraceLog(), "x"):
            _busy_work()
        path = profiler.write(tmp_path / "deep" / "profile.json")
        doc = json.loads(path.read_text())
        assert doc["schema"] == PROFILE_SCHEMA
        assert doc["hotspots"]

    def test_to_text(self):
        profiler = SpanProfiler(trace_allocations=False)
        with profiler.span(NullTraceLog(), "x"):
            _busy_work()
        text = profiler.to_text()
        assert "hotspots by cumulative time" in text
        assert "profiled spans: 1" in text
