"""Tests for the heartbeat progress reporter (driven with a fake clock)."""

import io

import pytest

from repro.obs import MetricsRegistry, ProgressReporter, TraceLog


class FakeClock:
    def __init__(self, t=0.0):
        self.t = t

    def __call__(self):
        return self.t

    def advance(self, dt):
        self.t += dt


@pytest.fixture
def clock():
    return FakeClock()


def _reporter(clock, **kwargs):
    kwargs.setdefault("stream", io.StringIO())
    kwargs.setdefault("clock", clock)
    return ProgressReporter(**kwargs)


class TestDefaultClock:
    def test_default_clock_is_monotonic(self):
        """Pin the wall-clock-jump fix: ETAs and stall detection must be
        computed off ``time.monotonic``, never ``time.time`` — an NTP step
        or DST change would otherwise produce negative elapsed times."""
        import time

        reporter = ProgressReporter(stream=io.StringIO())
        assert reporter._clock is time.monotonic


class TestHeartbeat:
    def test_counts_and_eta(self, clock):
        reporter = _reporter(clock, total=4)
        clock.advance(10.0)
        reporter.advance("fig02")
        line = reporter.tick()
        assert "[progress] 1/4 experiments" in line
        assert "elapsed 10.0s" in line
        assert "eta 30.0s" in line  # 3 remaining at 10s each
        assert "last fig02" in line

    def test_no_eta_without_progress(self, clock):
        reporter = _reporter(clock, total=4)
        clock.advance(5.0)
        assert "eta" not in reporter.tick()

    def test_total_optional(self, clock):
        reporter = _reporter(clock, label="units")
        reporter.advance()
        assert "[progress] 1 units" in reporter.tick()

    def test_lines_go_to_stream_and_history(self, clock):
        stream = io.StringIO()
        reporter = _reporter(clock, total=2, stream=stream)
        line = reporter.tick()
        assert reporter.heartbeats == [line]
        assert stream.getvalue() == line + "\n"

    def test_invalid_params(self, clock):
        with pytest.raises(ValueError):
            _reporter(clock, interval_s=0.0)
        with pytest.raises(ValueError):
            _reporter(clock, total=-1)


class TestTraceWatching:
    def test_trace_delta_reported(self, clock):
        trace = TraceLog()
        reporter = _reporter(clock, total=2, trace=trace)
        trace.emit("a")
        trace.emit("b")
        assert "trace 2 (+2)" in reporter.tick()
        trace.emit("c")
        assert "trace 3 (+1)" in reporter.tick()

    def test_stall_flagged_when_nothing_moves(self, clock):
        trace = TraceLog()
        reporter = _reporter(clock, total=2, trace=trace, stall_after_s=30.0)
        clock.advance(31.0)
        line = reporter.tick()
        assert "STALL" in line
        assert reporter.stalls == 1

    def test_trace_events_clear_stall(self, clock):
        trace = TraceLog()
        reporter = _reporter(clock, total=2, trace=trace, stall_after_s=30.0)
        clock.advance(31.0)
        trace.emit("alive")
        line = reporter.tick()
        assert "STALL" not in line
        # ...and the activity mark moved, so the next window starts fresh.
        clock.advance(10.0)
        assert "STALL" not in reporter.tick()

    def test_advance_clears_stall(self, clock):
        reporter = _reporter(clock, total=2, stall_after_s=30.0)
        clock.advance(29.0)
        reporter.advance("slow-exp")
        clock.advance(2.0)
        assert "STALL" not in reporter.tick()

    def test_default_stall_window_scales_with_interval(self, clock):
        assert _reporter(clock, interval_s=10.0).stall_after_s == 60.0
        assert _reporter(clock, interval_s=0.1).stall_after_s == 30.0

    def test_stall_emits_trace_warning_event(self, clock):
        trace = TraceLog()
        reporter = _reporter(clock, total=2, trace=trace, stall_after_s=30.0)
        reporter.advance("slow-exp")
        clock.advance(31.0)
        reporter.tick()
        stalls = [e for e in trace.events() if e.name == "stall"]
        assert len(stalls) == 1
        assert stalls[0].kind == "warning"
        assert stalls[0].fields["idle_s"] == 31.0
        assert stalls[0].fields["done"] == 1
        assert stalls[0].fields["last_item"] == "slow-exp"

    def test_stall_event_does_not_count_as_activity(self, clock):
        # The emitted stall warning must not read as "new trace events" on
        # the next beat, or every second stall warning would be suppressed.
        trace = TraceLog()
        reporter = _reporter(clock, total=2, trace=trace, stall_after_s=30.0)
        clock.advance(31.0)
        assert "STALL" in reporter.tick()
        clock.advance(31.0)
        assert "STALL" in reporter.tick()
        assert reporter.stalls == 2

    def test_stall_increments_counter(self, clock):
        registry = MetricsRegistry()
        reporter = _reporter(clock, total=2, registry=registry, stall_after_s=30.0)
        clock.advance(31.0)
        reporter.tick()
        snap = registry.snapshot()
        assert snap["progress_stalls_total"]["series"][0]["value"] == 1.0


class TestRegistrySnapshots:
    def test_snapshots_accumulate(self, clock):
        registry = MetricsRegistry()
        registry.counter("events_total").inc(5)
        reporter = _reporter(clock, total=2, registry=registry)
        clock.advance(1.0)
        line = reporter.tick()
        assert "metrics 1 families" in line
        assert len(reporter.snapshots) == 1
        snap = reporter.snapshots[0]
        assert snap["elapsed_s"] == 1.0
        assert snap["metrics"]["events_total"]["series"][0]["value"] == 5.0

    def test_snapshot_ring_bounded(self, clock):
        reporter = _reporter(clock, registry=MetricsRegistry())
        for _ in range(100):
            reporter.tick()
        assert len(reporter.snapshots) == 32


class TestLifecycle:
    def test_finish_emits_summary(self, clock):
        reporter = _reporter(clock, total=3)
        reporter.advance()
        reporter.advance()
        clock.advance(7.5)
        reporter.finish()
        assert reporter.heartbeats[-1] == "[progress] done: 2/3 experiments in 7.5s"

    def test_thread_start_finish(self):
        # Real clock + real thread: just verify clean start/stop and that
        # the summary line lands.
        stream = io.StringIO()
        reporter = ProgressReporter(total=1, interval_s=0.05, stream=stream)
        reporter.start()
        reporter.advance("only")
        reporter.finish()
        assert reporter._thread is None
        assert "[progress] done: 1/1 experiments" in stream.getvalue()
