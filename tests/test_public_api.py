"""Public-API surface tests: what downstream users import must exist.

Guards the `repro` top-level namespace and the subpackage exports against
accidental breakage; also sanity-runs the README quickstart snippet.
"""

import importlib

import pytest

import repro


class TestTopLevel:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_core_classes_exposed(self):
        for name in (
            "ServiceSpec",
            "ModelInputs",
            "ResourceKind",
            "UtilityAnalyticModel",
            "ConsolidationPlanner",
            "DynamicCapacityPlanner",
            "ServerPowerModel",
            "HeterogeneousPool",
        ):
            assert name in repro.__all__


@pytest.mark.parametrize(
    "module",
    [
        "repro.core",
        "repro.queueing",
        "repro.virtualization",
        "repro.cluster",
        "repro.simulation",
        "repro.workloads",
        "repro.analysis",
        "repro.experiments",
        "repro.service",
    ],
)
class TestSubpackages:
    def test_all_exports_resolve(self, module):
        mod = importlib.import_module(module)
        assert mod.__doc__, f"{module} lacks a module docstring"
        for name in getattr(mod, "__all__", []):
            assert hasattr(mod, name), f"{module}.{name} missing"


class TestReadmeQuickstart:
    def test_snippet_runs_and_matches_claims(self):
        from repro import ConsolidationPlanner, ResourceKind, ServiceSpec

        web = ServiceSpec(
            "web",
            arrival_rate=1200.0,
            service_rates={ResourceKind.CPU: 3360.0, ResourceKind.DISK_IO: 1420.0},
            impact_factors={ResourceKind.CPU: 0.65, ResourceKind.DISK_IO: 0.8},
        )
        db = ServiceSpec(
            "db",
            arrival_rate=80.0,
            service_rates={ResourceKind.CPU: 100.0},
            impact_factors={ResourceKind.CPU: 0.9},
        )
        report = ConsolidationPlanner(
            xen_idle_factor=0.91, xen_workload_factor=0.70
        ).plan([web, db], 0.01)
        assert report.dedicated_servers == 8
        assert report.consolidated_servers == 4
        assert report.infrastructure_saving == pytest.approx(0.5)
        assert report.power_saving == pytest.approx(0.53, abs=0.03)
        assert "M = 8" in report.to_text()


class TestCli:
    def test_list_runs(self, capsys):
        from repro.experiments.runner import main

        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "table1" in out and "fig10" in out and "ext-scale" in out

    def test_single_experiment_runs(self, capsys):
        from repro.experiments.runner import main

        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "Table I" in out

    def test_unknown_experiment_raises(self):
        from repro.experiments.runner import main

        with pytest.raises(KeyError):
            main(["fig99"])


class TestExperimentExport:
    def test_export_writes_csv_and_json(self, tmp_path):
        import csv
        import json

        from repro.experiments import run_experiment

        result = run_experiment("table1")
        csv_path, json_path = result.export(tmp_path)
        assert csv_path.exists() and json_path.exists()
        with csv_path.open() as fh:
            rows = list(csv.DictReader(fh))
        assert len(rows) == len(result.rows)
        assert rows[0]["M"] == "6"
        payload = json.loads(json_path.read_text())
        assert payload["experiment"] == "table1"
        assert payload["summary"]["group1_matches_paper"] is True

    def test_cli_output_flag(self, tmp_path, capsys):
        from repro.experiments.runner import main

        assert main(["table1", "--output", str(tmp_path)]) == 0
        assert (tmp_path / "table1.csv").exists()
