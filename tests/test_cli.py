"""Tests for the repro-plan CLI."""

import json

import pytest

from repro.cli import DeploymentError, main, parse_deployment

VALID_DOC = {
    "loss_probability": 0.01,
    "services": [
        {
            "name": "web",
            "arrival_rate": 1200.0,
            "service_rates": {"cpu": 3360.0, "disk_io": 1420.0},
            "impact_factors": {"cpu": 0.65, "disk_io": 0.8},
        },
        {
            "name": "db",
            "arrival_rate": 80.0,
            "service_rates": {"cpu": 100.0},
            "impact_factors": {"cpu": 0.9},
            "loss_probability": 0.001,
        },
    ],
    "xen_idle_factor": 0.91,
    "xen_workload_factor": 0.70,
}


def write(tmp_path, doc):
    path = tmp_path / "deployment.json"
    path.write_text(json.dumps(doc))
    return str(path)


class TestParseDeployment:
    def test_valid_document(self):
        inputs, targets, planner = parse_deployment(VALID_DOC)
        assert {s.name for s in inputs.services} == {"web", "db"}
        assert targets == {"db": 0.001}
        assert planner.xen_idle_factor == 0.91

    def test_missing_services(self):
        with pytest.raises(DeploymentError):
            parse_deployment({"loss_probability": 0.01, "services": []})

    def test_missing_loss_probability(self):
        with pytest.raises(DeploymentError):
            parse_deployment({"services": VALID_DOC["services"]})

    def test_unknown_resource(self):
        doc = {
            "loss_probability": 0.01,
            "services": [
                {"name": "x", "arrival_rate": 1.0, "service_rates": {"gpu": 1.0}}
            ],
        }
        with pytest.raises(DeploymentError, match="gpu"):
            parse_deployment(doc)

    def test_invalid_service_values(self):
        doc = {
            "loss_probability": 0.01,
            "services": [
                {"name": "x", "arrival_rate": -1.0, "service_rates": {"cpu": 1.0}}
            ],
        }
        with pytest.raises(DeploymentError):
            parse_deployment(doc)


class TestMain:
    def test_text_output(self, tmp_path, capsys):
        assert main([write(tmp_path, VALID_DOC)]) == 0
        out = capsys.readouterr().out
        assert "M = 8" in out
        assert "N = 4" in out
        assert "Consolidated servers under targets: 5" in out

    def test_json_output(self, tmp_path, capsys):
        assert main([write(tmp_path, VALID_DOC), "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["dedicated_servers"] == 8
        assert doc["consolidated_servers"] == 4
        assert doc["consolidated_servers_with_targets"] == 5
        assert doc["load_model"] == "paper"

    def test_offered_mode_more_conservative(self, tmp_path, capsys):
        assert main([write(tmp_path, VALID_DOC), "--load-model", "offered", "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["consolidated_servers"] == 6

    def test_missing_file(self, tmp_path, capsys):
        assert main([str(tmp_path / "nope.json")]) == 2
        assert "no such file" in capsys.readouterr().err

    def test_invalid_json(self, tmp_path, capsys):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        assert main([str(path)]) == 2
        assert "invalid JSON" in capsys.readouterr().err

    def test_semantic_error(self, tmp_path, capsys):
        doc = dict(VALID_DOC, loss_probability=2.0)
        assert main([write(tmp_path, doc)]) == 2
        assert "error" in capsys.readouterr().err

    def test_example_file_is_valid(self, capsys):
        assert main(["examples/deployment.json"]) == 0


class TestObservability:
    def test_metrics_and_trace_exports(self, tmp_path, capsys):
        metrics = tmp_path / "plan.prom"
        trace = tmp_path / "plan.jsonl"
        code = main(
            [
                write(tmp_path, VALID_DOC),
                "--json",
                "--metrics-out",
                str(metrics),
                "--trace-out",
                str(trace),
            ]
        )
        assert code == 0
        # The report itself is unchanged by observability.
        doc = json.loads(capsys.readouterr().out)
        assert doc["dedicated_servers"] == 8
        text = metrics.read_text()
        assert "erlang_inversion_calls_total" in text
        assert 'model_solves_total{load_model="paper"}' in text
        lines = [json.loads(l) for l in trace.read_text().strip().splitlines()]
        assert [l["kind"] for l in lines] == ["span_begin", "span_end"]
        assert lines[0]["name"] == "plan"
        assert lines[1]["load_model"] == "paper"

    def test_offered_mode_metrics_label(self, tmp_path, capsys):
        metrics = tmp_path / "plan.prom"
        code = main(
            [
                write(tmp_path, VALID_DOC),
                "--load-model",
                "offered",
                "--metrics-out",
                str(metrics),
            ]
        )
        assert code == 0
        capsys.readouterr()
        assert 'model_solves_total{load_model="offered"} 1' in metrics.read_text()

    def test_no_flags_no_files(self, tmp_path, capsys):
        assert main([write(tmp_path, VALID_DOC)]) == 0
        capsys.readouterr()
        assert not (tmp_path / "plan.prom").exists()

    def test_profile_out_writes_hotspot_report(self, tmp_path, capsys):
        profile = tmp_path / "plan_profile.json"
        assert main([write(tmp_path, VALID_DOC), "--profile-out", str(profile)]) == 0
        capsys.readouterr()
        doc = json.loads(profile.read_text())
        assert doc["schema"] == "repro.profile/v1"
        assert doc["spans"] == [
            {
                "name": "plan",
                "deployment": str(tmp_path / "deployment.json"),
                "load_model": "paper",
            }
        ]
        functions = [row["function"] for row in doc["hotspots"]]
        assert any("solve" in f for f in functions)
        assert doc["allocations"]["peak_bytes"] > 0


class TestOutputPathErrors:
    """Exports into an impossible parent fail with a message, not a traceback."""

    @pytest.mark.parametrize("flag", ["--metrics-out", "--trace-out", "--profile-out"])
    def test_parent_is_a_file(self, tmp_path, capsys, flag):
        blocker = tmp_path / "blocker"
        blocker.write_text("")
        target = blocker / "sub" / "out.file"
        assert main([write(tmp_path, VALID_DOC), flag, str(target)]) == 1
        err = capsys.readouterr().err
        assert "cannot write observability output" in err

    def test_missing_parent_is_created(self, tmp_path, capsys):
        target = tmp_path / "fresh" / "dir" / "m.prom"
        assert main([write(tmp_path, VALID_DOC), "--metrics-out", str(target)]) == 0
        capsys.readouterr()
        assert target.exists()


class TestControlPreview:
    def test_text_mode_renders_the_preview_block(self, tmp_path, capsys):
        assert main([write(tmp_path, VALID_DOC), "--control"]) == 0
        out = capsys.readouterr().out
        assert "Dynamic consolidation preview" in out
        assert "static peak fleet" in out
        assert "boots" in out and "migrations" in out
        # The example fleet is tiny, so headroom dominates: the preview
        # must say so rather than hide a negative saving.
        assert "note" in out

    def test_json_mode_attaches_control_preview(self, tmp_path, capsys):
        assert main([write(tmp_path, VALID_DOC), "--control", "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        preview = doc["control_preview"]
        assert preview["static_peak_servers"] >= 1
        assert preview["static_server_hours_per_day"] > 0
        assert preview["reactive_server_hours_per_day"] > 0
        assert preview["boots"] >= 0 and preview["shutdowns"] >= 0
        if preview["saving_pct"] <= 0:
            assert "note" in preview

    def test_preview_is_deterministic(self, tmp_path, capsys):
        assert main([write(tmp_path, VALID_DOC), "--control", "--json"]) == 0
        first = json.loads(capsys.readouterr().out)["control_preview"]
        assert main([write(tmp_path, VALID_DOC), "--control", "--json"]) == 0
        again = json.loads(capsys.readouterr().out)["control_preview"]
        assert first == again

    def test_without_flag_no_preview(self, tmp_path, capsys):
        assert main([write(tmp_path, VALID_DOC), "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert "control_preview" not in doc
