"""Property-based tests (hypothesis) for the Erlang machinery."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.queueing.erlang import (
    erlang_b,
    erlang_b_continuous,
    erlang_b_log,
    erlang_c,
    max_load_for_blocking,
    min_servers,
    min_servers_continuous,
)

loads = st.floats(min_value=0.0, max_value=500.0, allow_nan=False)
positive_loads = st.floats(min_value=1e-3, max_value=500.0, allow_nan=False)
servers = st.integers(min_value=0, max_value=400)
targets = st.floats(min_value=1e-6, max_value=0.5)


@given(servers, loads)
def test_blocking_is_a_probability(n, rho):
    b = erlang_b(n, rho)
    assert 0.0 <= b <= 1.0


@given(st.integers(min_value=1, max_value=200), positive_loads)
def test_blocking_decreases_with_capacity(n, rho):
    assert erlang_b(n, rho) <= erlang_b(n - 1, rho) + 1e-12


@given(servers, positive_loads, st.floats(min_value=1.01, max_value=5.0))
def test_blocking_increases_with_load(n, rho, factor):
    assert erlang_b(n, rho * factor) >= erlang_b(n, rho) - 1e-12


@given(st.integers(min_value=0, max_value=150), positive_loads)
def test_log_domain_matches_recurrence(n, rho):
    assert math.isclose(erlang_b_log(n, rho), erlang_b(n, rho), rel_tol=1e-8, abs_tol=1e-12)


@given(st.integers(min_value=0, max_value=150), positive_loads)
def test_continuous_extension_matches_at_integers(n, rho):
    assert math.isclose(
        erlang_b_continuous(float(n), rho), erlang_b(n, rho), rel_tol=1e-7, abs_tol=1e-12
    )


@given(positive_loads, targets)
def test_min_servers_is_exact_threshold(rho, target):
    n = min_servers(rho, target)
    assert erlang_b(n, rho) <= target
    if n > 0:
        assert erlang_b(n - 1, rho) > target


@settings(max_examples=50)
@given(positive_loads, targets)
def test_inversion_methods_agree(rho, target):
    assert min_servers_continuous(rho, target) == min_servers(rho, target)


@given(positive_loads, targets, st.floats(min_value=1.1, max_value=4.0))
def test_min_servers_subadditive_under_pooling(rho, target, factor):
    # Statistical multiplexing: serving the pooled load never needs more
    # servers than serving the parts separately — the mathematical heart of
    # the paper's consolidation claim.
    n_pooled = min_servers(rho * factor, target)
    n_split = min_servers(rho, target) + min_servers(rho * (factor - 1.0), target)
    assert n_pooled <= n_split


@settings(max_examples=50)
@given(st.integers(min_value=1, max_value=100), targets)
def test_max_load_is_tight(n, target):
    rho = max_load_for_blocking(n, target)
    assert erlang_b(n, rho) <= target
    assert erlang_b(n, rho * 1.01 + 1e-9) > target


@given(st.integers(min_value=1, max_value=100), st.floats(min_value=1e-3, max_value=0.99))
def test_erlang_c_dominates_erlang_b(n, utilisation):
    rho = n * utilisation
    assert erlang_c(n, rho) >= erlang_b(n, rho) - 1e-12
