"""Property suite: the batched kernels agree with the scalar path.

ISSUE 7 satellite: hypothesis-driven agreement of vectorized
``erlang_b``/``min_servers`` with the scalar implementations over random
grids — exact equality (the lockstep kernels execute the scalar IEEE-754
sequence) — including edge shapes (0-d, length-1, ragged broadcast) and
the n=0 / rho→0 / B→1 boundaries.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.queueing import erlang
from repro.queueing import vectorized as vec

# Loads/targets spanning the paper's operating range plus the boundaries:
# rho→0 via tiny positive loads and exact zeros mixed into grids below.
loads = st.floats(min_value=0.0, max_value=300.0,
                  allow_nan=False, allow_infinity=False)
positive_loads = st.floats(min_value=1e-9, max_value=300.0,
                           allow_nan=False, allow_infinity=False)
targets = st.floats(min_value=1e-7, max_value=0.999999,
                    allow_nan=False, allow_infinity=False)
server_counts = st.integers(min_value=0, max_value=500)


class TestErlangBAgreement:
    @given(grid=st.lists(st.tuples(server_counts, loads),
                         min_size=1, max_size=60))
    @settings(max_examples=120, deadline=None)
    def test_random_grids_agree_exactly(self, grid):
        n = np.array([g[0] for g in grid])
        rho = np.array([g[1] for g in grid])
        batched = vec.erlang_b(n, rho)
        scalar = [erlang.erlang_b(int(a), float(r)) for a, r in zip(n, rho)]
        assert batched.tolist() == scalar

    @given(n=server_counts, rho=loads)
    @settings(max_examples=150, deadline=None)
    def test_0d_arrays_match_scalars(self, n, rho):
        out = vec.erlang_b(np.asarray(n), np.asarray(rho))
        assert out.shape == ()
        assert float(out) == erlang.erlang_b(n, rho)

    @given(n=server_counts, rho=loads)
    @settings(max_examples=100, deadline=None)
    def test_length_1_arrays(self, n, rho):
        out = vec.erlang_b(np.array([n]), np.array([rho]))
        assert out.shape == (1,)
        assert out[0] == erlang.erlang_b(n, rho)

    @given(ns=st.lists(server_counts, min_size=1, max_size=12),
           rhos=st.lists(loads, min_size=1, max_size=12))
    @settings(max_examples=60, deadline=None)
    def test_ragged_broadcast_plane(self, ns, rhos):
        n_col = np.array(ns)[:, None]     # (k, 1)
        rho_row = np.array(rhos)          # (m,)
        plane = vec.erlang_b(n_col, rho_row)
        assert plane.shape == (len(ns), len(rhos))
        for i, n in enumerate(ns):
            for j, rho in enumerate(rhos):
                assert plane[i, j] == erlang.erlang_b(n, rho)

    @given(rho=loads)
    @settings(max_examples=60, deadline=None)
    def test_n0_boundary(self, rho):
        out = vec.erlang_b(np.array([0]), np.array([rho]))
        assert out[0] == erlang.erlang_b(0, rho) == 1.0

    @given(n=server_counts)
    @settings(max_examples=60, deadline=None)
    def test_rho_zero_boundary(self, n):
        out = vec.erlang_b(np.array([n]), np.array([0.0]))
        assert out[0] == (1.0 if n == 0 else 0.0)


class TestMinServersAgreement:
    @given(grid=st.lists(st.tuples(loads, targets),
                         min_size=1, max_size=50))
    @settings(max_examples=100, deadline=None)
    def test_random_grids_agree_exactly(self, grid):
        rho = np.array([g[0] for g in grid])
        target = np.array([g[1] for g in grid])
        batched = vec.min_servers(rho, target)
        scalar = [
            erlang.min_servers(float(r), float(t)) for r, t in zip(rho, target)
        ]
        assert batched.tolist() == scalar

    @given(rho=loads, target=targets)
    @settings(max_examples=120, deadline=None)
    def test_0d_arrays_match_scalars(self, rho, target):
        out = vec.min_servers(np.asarray(rho), np.asarray(target))
        assert out.shape == ()
        assert int(out) == erlang.min_servers(rho, target)

    @given(rhos=st.lists(positive_loads, min_size=1, max_size=10),
           tgts=st.lists(targets, min_size=1, max_size=10))
    @settings(max_examples=50, deadline=None)
    def test_ragged_broadcast_plane(self, rhos, tgts):
        plane = vec.min_servers(np.array(rhos)[:, None], np.array(tgts))
        assert plane.shape == (len(rhos), len(tgts))
        for i, rho in enumerate(rhos):
            for j, target in enumerate(tgts):
                assert plane[i, j] == erlang.min_servers(rho, target)

    @given(target=targets)
    @settings(max_examples=60, deadline=None)
    def test_rho_zero_needs_no_servers(self, target):
        out = vec.min_servers(np.array([0.0]), np.array([target]))
        assert out[0] == 0 == erlang.min_servers(0.0, target)

    @given(rho=positive_loads)
    @settings(max_examples=60, deadline=None)
    def test_target_near_one_boundary(self, rho):
        # B→1: E_1(rho) = rho/(1+rho) < 1 for finite rho, so one server
        # always suffices at a target this close to certainty.
        target = 0.999999999
        out = vec.min_servers(np.array([rho]), np.array([target]))
        assert out[0] == erlang.min_servers(rho, target)
        assert out[0] <= 1

    @given(grid=st.lists(st.tuples(positive_loads, targets),
                         min_size=1, max_size=25))
    @settings(max_examples=40, deadline=None)
    def test_continuous_inversion_agrees_with_scan(self, grid):
        rho = np.array([g[0] for g in grid])
        target = np.array([g[1] for g in grid])
        batched = vec.min_servers_continuous(rho, target)
        scalar = [
            erlang.min_servers_continuous(float(r), float(t))
            for r, t in zip(rho, target)
        ]
        assert batched.tolist() == scalar
