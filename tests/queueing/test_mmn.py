"""Unit tests for the packaged M/G/n/n and M/M/n metrics."""

import math

import pytest

from repro.queueing.erlang import erlang_b, erlang_c
from repro.queueing.mmn import (
    min_servers_for_wait,
    mmn_delay_metrics,
    mmnn_loss_metrics,
)


class TestLossMetrics:
    def test_consistency_relations(self):
        m = mmnn_loss_metrics(arrival_rate=30.0, service_rate=10.0, servers=5)
        b = erlang_b(5, 3.0)
        assert m.blocking_probability == pytest.approx(b)
        assert m.carried_load == pytest.approx(3.0 * (1.0 - b))
        assert m.utilization == pytest.approx(m.carried_load / 5)
        assert m.throughput == pytest.approx(30.0 * (1.0 - b))
        assert m.loss_rate == pytest.approx(30.0 * b)
        assert m.throughput + m.loss_rate == pytest.approx(30.0)

    def test_utilization_bounded(self):
        for servers in (1, 2, 8):
            m = mmnn_loss_metrics(100.0, 10.0, servers)
            assert 0.0 <= m.utilization <= 1.0

    def test_zero_servers(self):
        m = mmnn_loss_metrics(10.0, 1.0, 0)
        assert m.blocking_probability == 1.0
        assert m.throughput == 0.0
        assert m.utilization == 0.0

    def test_infinite_service_rate(self):
        m = mmnn_loss_metrics(10.0, math.inf, 3)
        assert m.offered_load == 0.0
        assert m.blocking_probability == 0.0
        assert m.throughput == pytest.approx(10.0)

    def test_rejects_negative_servers(self):
        with pytest.raises(ValueError):
            mmnn_loss_metrics(1.0, 1.0, -1)


class TestDelayMetrics:
    def test_little_law_consistency(self):
        # L_q = lambda * W_q (Little's law for the queue).
        m = mmn_delay_metrics(arrival_rate=8.0, service_rate=3.0, servers=4)
        assert m.mean_queue_length == pytest.approx(8.0 * m.mean_wait, rel=1e-9)

    def test_probability_of_wait_is_erlang_c(self):
        m = mmn_delay_metrics(8.0, 3.0, 4)
        assert m.probability_of_wait == pytest.approx(erlang_c(4, 8.0 / 3.0))

    def test_response_is_wait_plus_service(self):
        m = mmn_delay_metrics(8.0, 3.0, 4)
        assert m.mean_response_time == pytest.approx(m.mean_wait + 1.0 / 3.0)

    def test_mm1_closed_form(self):
        # M/M/1: W = 1/(mu - lambda).
        m = mmn_delay_metrics(2.0, 5.0, 1)
        assert m.mean_response_time == pytest.approx(1.0 / 3.0)

    def test_rejects_unstable(self):
        with pytest.raises(ValueError):
            mmn_delay_metrics(10.0, 1.0, 5)

    def test_rejects_zero_servers(self):
        with pytest.raises(ValueError):
            mmn_delay_metrics(1.0, 1.0, 0)

    def test_wait_explodes_near_saturation(self):
        light = mmn_delay_metrics(1.0, 1.0, 4)
        heavy = mmn_delay_metrics(3.9, 1.0, 4)
        assert heavy.mean_wait > 50.0 * light.mean_wait


class TestMinServersForWait:
    def test_definition_holds(self):
        lam, mu, target = 8.0, 3.0, 0.05
        n = min_servers_for_wait(lam, mu, target)
        assert mmn_delay_metrics(lam, mu, n).mean_wait <= target
        if n > lam / mu + 1:
            assert mmn_delay_metrics(lam, mu, n - 1).mean_wait > target

    def test_zero_wait_target_reachable(self):
        # Mean wait is never exactly zero for finite n, but becomes tiny;
        # a strictly positive target always terminates.
        n = min_servers_for_wait(2.0, 1.0, 1e-6)
        assert mmn_delay_metrics(2.0, 1.0, n).mean_wait <= 1e-6

    def test_tighter_target_more_servers(self):
        loose = min_servers_for_wait(8.0, 3.0, 1.0)
        tight = min_servers_for_wait(8.0, 3.0, 0.001)
        assert tight >= loose

    def test_starts_above_stability_floor(self):
        # rho = 4.0: at least 5 servers regardless of a lax target.
        assert min_servers_for_wait(4.0, 1.0, 1e6) == 5

    def test_validation(self):
        with pytest.raises(ValueError):
            min_servers_for_wait(0.0, 1.0, 0.1)
        with pytest.raises(ValueError):
            min_servers_for_wait(1.0, 1.0, -0.1)


class TestWaitDistribution:
    def test_tail_at_zero_is_probability_of_wait(self):
        from repro.queueing.mmn import wait_tail_probability

        lam, mu, n = 8.0, 3.0, 4
        m = mmn_delay_metrics(lam, mu, n)
        assert wait_tail_probability(lam, mu, n, 0.0) == pytest.approx(
            m.probability_of_wait
        )

    def test_tail_decreasing_and_integrates_to_mean(self):
        from repro.queueing.mmn import wait_tail_probability

        lam, mu, n = 8.0, 3.0, 4
        ts = [0.0, 0.1, 0.5, 1.0, 2.0]
        tails = [wait_tail_probability(lam, mu, n, t) for t in ts]
        assert all(a > b for a, b in zip(tails, tails[1:]))
        # Integral of the tail equals the mean wait (numerical check).
        import numpy as np

        grid = np.linspace(0.0, 10.0, 20_001)
        tail = np.array([wait_tail_probability(lam, mu, n, t) for t in grid])
        mean = float(np.trapezoid(tail, grid))
        assert mean == pytest.approx(
            mmn_delay_metrics(lam, mu, n).mean_wait, rel=1e-3
        )

    def test_percentile_inverts_tail(self):
        from repro.queueing.mmn import wait_percentile, wait_tail_probability

        lam, mu, n = 8.0, 3.0, 4
        t95 = wait_percentile(lam, mu, n, 0.95)
        assert wait_tail_probability(lam, mu, n, t95) == pytest.approx(0.05)

    def test_light_load_percentile_zero(self):
        from repro.queueing.mmn import wait_percentile

        # Almost nobody waits: the 90th percentile wait is exactly 0.
        assert wait_percentile(0.5, 10.0, 4, 0.9) == 0.0

    def test_validation(self):
        from repro.queueing.mmn import wait_percentile, wait_tail_probability

        with pytest.raises(ValueError):
            wait_tail_probability(1.0, 1.0, 2, -1.0)
        with pytest.raises(ValueError):
            wait_percentile(1.0, 1.0, 2, 1.0)
