"""Property-based tests for the Erlang fixed point."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.queueing.erlang import erlang_b
from repro.queueing.fixed_point import erlang_fixed_point

loads = st.floats(min_value=0.0, max_value=20.0, allow_nan=False)
caps = st.integers(min_value=1, max_value=30)


@st.composite
def networks(draw):
    n_services = draw(st.integers(min_value=1, max_value=4))
    n_resources = draw(st.integers(min_value=1, max_value=3))
    resources = [f"r{j}" for j in range(n_resources)]
    offered = {}
    for i in range(n_services):
        touched = draw(
            st.lists(
                st.sampled_from(resources), min_size=1, max_size=n_resources, unique=True
            )
        )
        offered[f"s{i}"] = {r: draw(loads) for r in touched}
    capacities = {r: draw(caps) for r in resources}
    return offered, capacities


@settings(max_examples=60, deadline=None)
@given(networks())
def test_blocking_values_are_probabilities(net):
    offered, capacities = net
    result = erlang_fixed_point(offered, capacities)
    for b in result.per_resource_blocking.values():
        assert 0.0 <= b <= 1.0
    for loss in result.per_service_loss.values():
        assert 0.0 <= loss <= 1.0


@settings(max_examples=60, deadline=None)
@given(networks())
def test_converges(net):
    offered, capacities = net
    result = erlang_fixed_point(offered, capacities)
    assert result.converged


@settings(max_examples=60, deadline=None)
@given(networks())
def test_reduced_load_blocking_below_naive_erlang(net):
    # Thinning can only lower each resource's load, hence its blocking.
    offered, capacities = net
    result = erlang_fixed_point(offered, capacities)
    for j, cap in capacities.items():
        naive_load = sum(loads.get(j, 0.0) for loads in offered.values())
        assert result.per_resource_blocking[j] <= erlang_b(cap, naive_load) + 1e-9


@settings(max_examples=60, deadline=None)
@given(networks(), st.integers(min_value=4, max_value=8))
def test_ample_capacity_drives_loss_to_zero(net, factor):
    # Per-service monotonicity in capacity is FALSE for loss networks (see
    # the paradox test below), but the limit property holds: scaling every
    # pool far beyond its offered load extinguishes all blocking.
    offered, capacities = net
    total = {j: sum(l.get(j, 0.0) for l in offered.values()) for j in capacities}
    ample = {
        j: max(c, int(total[j] * factor) + 10) for j, c in capacities.items()
    }
    result = erlang_fixed_point(offered, ample)
    for loss in result.per_service_loss.values():
        assert loss < 0.01


def test_capacity_paradox_regression():
    """Braess-like non-monotonicity, found by hypothesis and kept pinned.

    Growing BOTH pools (r0: 7->8, r1: 1->2) RAISES s1's loss: the larger
    r1 blocks fewer s0 requests, so more of them compete with s1 on r0,
    and r0's one extra unit does not compensate.  Real loss networks
    exhibit exactly this, so the approximation reproducing it is a
    feature, not a bug.
    """
    offered = {"s0": {"r0": 2.0, "r1": 1.0}, "s1": {"r0": 1.0}}
    base = erlang_fixed_point(offered, {"r0": 7, "r1": 1})
    bigger = erlang_fixed_point(offered, {"r0": 8, "r1": 2})
    assert bigger.per_service_loss["s1"] > base.per_service_loss["s1"]
    # The paradox is per-service: s0 itself does benefit.
    assert bigger.per_service_loss["s0"] < base.per_service_loss["s0"]


@settings(max_examples=40, deadline=None)
@given(st.floats(min_value=0.01, max_value=50.0), caps)
def test_single_resource_is_exact(rho, cap):
    result = erlang_fixed_point({"s": {"r": rho}}, {"r": cap})
    assert abs(result.per_resource_blocking["r"] - erlang_b(cap, rho)) < 1e-6
