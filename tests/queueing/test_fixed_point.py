"""Unit + validation tests for the Erlang fixed-point approximation."""

import numpy as np
import pytest

from repro.core.inputs import ResourceKind
from repro.queueing.erlang import erlang_b
from repro.queueing.fixed_point import erlang_fixed_point, fixed_point_for_inputs
from repro.simulation.loss_network import LossNetwork, ServiceTraffic

CPU = ResourceKind.CPU
DISK = ResourceKind.DISK_IO


class TestSingleResource:
    def test_reduces_to_erlang_b(self):
        result = erlang_fixed_point({"s": {"cpu": 2.5}}, {"cpu": 4})
        assert result.converged
        assert result.per_resource_blocking["cpu"] == pytest.approx(
            erlang_b(4, 2.5), abs=1e-9
        )
        assert result.per_service_loss["s"] == pytest.approx(erlang_b(4, 2.5))

    def test_two_services_pool_their_loads(self):
        result = erlang_fixed_point(
            {"a": {"cpu": 1.0}, "b": {"cpu": 1.5}}, {"cpu": 4}
        )
        assert result.per_resource_blocking["cpu"] == pytest.approx(
            erlang_b(4, 2.5), abs=1e-9
        )

    def test_zero_load(self):
        result = erlang_fixed_point({"s": {"cpu": 0.0}}, {"cpu": 2})
        assert result.per_service_loss["s"] == 0.0


class TestMultiResource:
    def test_blocking_below_independent_erlang(self):
        # Reduced load thins each resource, so fixed-point blocking is at
        # most the naive independent value.
        offered = {"s": {"cpu": 3.0, "disk": 3.0}}
        result = erlang_fixed_point(offered, {"cpu": 4, "disk": 4})
        naive = erlang_b(4, 3.0)
        for j in ("cpu", "disk"):
            assert result.per_resource_blocking[j] <= naive + 1e-12

    def test_service_loss_exceeds_single_resource(self):
        # Needing both resources compounds acceptance probabilities.
        result = erlang_fixed_point(
            {"s": {"cpu": 3.0, "disk": 3.0}}, {"cpu": 4, "disk": 4}
        )
        assert (
            result.per_service_loss["s"]
            >= result.per_resource_blocking["cpu"] - 1e-12
        )

    def test_asymmetric_resources(self):
        result = erlang_fixed_point(
            {"web": {"cpu": 0.5, "disk": 2.5}, "db": {"cpu": 2.0}},
            {"cpu": 4, "disk": 4},
        )
        assert result.converged
        assert result.per_resource_blocking["disk"] > result.per_resource_blocking["cpu"] * 0.5
        assert 0.0 < result.per_service_loss["web"] < 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            erlang_fixed_point({}, {"cpu": 1})
        with pytest.raises(ValueError):
            erlang_fixed_point({"s": {"cpu": 1.0}}, {})
        with pytest.raises(KeyError):
            erlang_fixed_point({"s": {"gpu": 1.0}}, {"cpu": 1})
        with pytest.raises(ValueError):
            erlang_fixed_point({"s": {"cpu": -1.0}}, {"cpu": 1})
        with pytest.raises(ValueError):
            erlang_fixed_point({"s": {"cpu": 1.0}}, {"cpu": 1}, damping=0.0)


class TestAgainstSimulation:
    def test_matches_loss_network_two_resources(self, rng):
        # The approximation must track the DES within ~1 point of loss.
        servers = 3
        net = LossNetwork(
            servers,
            [
                ServiceTraffic.exponential("web", 4.0, {CPU: 2.0, DISK: 3.0}),
                ServiceTraffic.exponential("db", 2.0, {CPU: 1.5}),
            ],
        )
        sim = net.run(20_000.0, rng)
        fp = erlang_fixed_point(
            {
                "web": {"cpu": 4.0 / 2.0, "disk": 4.0 / 3.0},
                "db": {"cpu": 2.0 / 1.5},
            },
            {"cpu": servers, "disk": servers},
        )
        for name in ("web", "db"):
            assert sim.per_service_loss[name] == pytest.approx(
                fp.per_service_loss[name], abs=0.03
            )


class TestFromModelInputs:
    def test_case_study_refinement(self):
        from repro.experiments.casestudy import GROUP2

        result = fixed_point_for_inputs(GROUP2.inputs(), servers=4)
        assert result.converged
        # CPU is the loaded resource; disk carries only the web load.
        assert result.per_resource_blocking["cpu"] > result.per_resource_blocking[
            "disk_io"
        ] * 0.5
        # The refinement confirms the EXPERIMENTS.md finding: ~3-5% loss at
        # the paper's N=4, above the 1% target.
        assert 0.01 < result.worst_service_loss < 0.10

    def test_native_variant(self):
        from repro.experiments.casestudy import GROUP2

        virt = fixed_point_for_inputs(GROUP2.inputs(), 4, virtualized=True)
        native = fixed_point_for_inputs(GROUP2.inputs(), 4, virtualized=False)
        # Virtualization overhead (a<1) can only worsen blocking.
        assert virt.worst_service_loss >= native.worst_service_loss - 1e-9

    def test_rejects_bad_servers(self):
        from repro.experiments.casestudy import GROUP2

        with pytest.raises(ValueError):
            fixed_point_for_inputs(GROUP2.inputs(), 0)
