"""Batched Erlang core: values, shapes, validation parity, throughput.

The vectorized module is the canonical implementation behind the scalar
wrappers, so these tests pin the three legs of the compatibility
contract: textbook values, scalar/array bit-identity on dense grids, and
``ValueError`` text identical to the scalar entry points.  The scalar
fuzz/property layer lives in ``test_vectorized_properties.py``.
"""

import math
import time

import numpy as np
import pytest

from repro.queueing import erlang
from repro.queueing import vectorized as vec

TEXTBOOK = [
    (1, 1.0, 0.5),
    (2, 1.0, 0.2),
    (3, 1.0, 1.0 / 16.0),
    (1, 2.0, 2.0 / 3.0),
    (2, 2.0, 0.4),
    (5, 3.0, 0.110054),
    (10, 5.0, 0.018385),
]


class TestErlangBArrays:
    def test_textbook_values_in_one_batch(self):
        n = np.array([row[0] for row in TEXTBOOK])
        rho = np.array([row[1] for row in TEXTBOOK])
        expected = [row[2] for row in TEXTBOOK]
        assert vec.erlang_b(n, rho) == pytest.approx(expected, rel=1e-4)

    def test_bit_identical_to_scalar_over_dense_grid(self):
        rng = np.random.default_rng(2009)
        n = rng.integers(0, 400, 3000)
        rho = rng.uniform(0.0, 250.0, 3000)
        batched = vec.erlang_b(n, rho)
        scalar = [erlang.erlang_b(int(a), float(r)) for a, r in zip(n, rho)]
        assert batched.tolist() == scalar  # ==, not approx: same IEEE ops

    def test_broadcasting_2d(self):
        n = np.arange(0, 30)[:, None]
        rho = np.array([0.5, 5.0, 50.0])
        grid = vec.erlang_b(n, rho)
        assert grid.shape == (30, 3)
        assert grid[7, 1] == erlang.erlang_b(7, 5.0)

    def test_zero_load_column(self):
        out = vec.erlang_b(np.array([0, 1, 5]), np.zeros(3))
        assert out.tolist() == [1.0, 0.0, 0.0]

    def test_scalar_inputs_return_python_float(self):
        out = vec.erlang_b(5, 3.0)
        assert isinstance(out, float)
        assert out == erlang.erlang_b(5, 3.0)


class TestMinServersArrays:
    def test_bit_identical_to_scalar_over_dense_grid(self):
        rng = np.random.default_rng(2009)
        rho = rng.uniform(0.0, 200.0, 3000)
        target = rng.uniform(1e-6, 0.5, 3000)
        batched = vec.min_servers(rho, target)
        scalar = [
            erlang.min_servers(float(r), float(t)) for r, t in zip(rho, target)
        ]
        assert batched.tolist() == scalar

    def test_continuous_inversion_matches_exact_scan(self):
        rng = np.random.default_rng(7)
        rho = rng.uniform(0.001, 5000.0, 800)
        target = rng.uniform(1e-5, 0.2, 800)
        assert (
            vec.min_servers_continuous(rho, target)
            == vec.min_servers(rho, target)
        ).all()

    def test_broadcast_plane(self):
        rho = np.linspace(1.0, 80.0, 40)[:, None]
        target = np.array([1e-2, 1e-3, 1e-4])
        plane = vec.min_servers(rho, target)
        assert plane.shape == (40, 3)
        # Monotone in both axes: more load or tighter loss → more servers.
        assert (np.diff(plane, axis=0) >= 0).all()
        assert (np.diff(plane, axis=1) >= 0).all()

    def test_scalar_inputs_return_python_int(self):
        out = vec.min_servers(20.0, 0.01)
        assert isinstance(out, int)
        assert out == erlang.min_servers(20.0, 0.01)

    def test_million_point_grid_under_60s(self):
        # ISSUE 7 acceptance: 1,000,000-point (rho, B) grid < 60 s.
        rho = np.linspace(0.5, 120.0, 1_000_000)
        t0 = time.perf_counter()
        sizes = vec.min_servers(rho, 0.01)
        elapsed = time.perf_counter() - t0
        assert elapsed < 60.0, f"1M-point grid took {elapsed:.1f}s"
        assert sizes.shape == (1_000_000,)
        # Spot-check the stitched answers against the scalar scan.
        for i in (0, 123_456, 999_999):
            assert sizes[i] == erlang.min_servers(float(rho[i]), 0.01)


class TestLogAndContinuousArrays:
    def test_log_agrees_with_recurrence(self):
        rng = np.random.default_rng(11)
        n = rng.integers(0, 300, 500)
        rho = rng.uniform(0.01, 150.0, 500)
        exact = vec.erlang_b(n, rho)
        logd = vec.erlang_b_log(n, rho)
        mask = exact > 1e-280  # below that, denormal noise dominates
        assert logd[mask] == pytest.approx(exact[mask], rel=1e-8)

    def test_log_scalar_path_matches_historical_logsumexp(self):
        for n, rho, _ in TEXTBOOK:
            assert vec.erlang_b_log(n, rho) == erlang.erlang_b_log(n, rho)

    def test_continuous_matches_scalar_everywhere(self):
        rng = np.random.default_rng(13)
        n = rng.uniform(0.0, 200.0, 500)
        rho = rng.uniform(0.0, 150.0, 500)
        batched = vec.erlang_b_continuous(n, rho)
        scalar = [
            erlang.erlang_b_continuous(float(a), float(r))
            for a, r in zip(n, rho)
        ]
        assert batched == pytest.approx(scalar, rel=1e-12, abs=0.0)

    def test_offered_load_broadcasts(self):
        lam = np.array([30.0, 100.0])
        mu = np.array([[10.0], [math.inf]])
        out = vec.offered_load(lam, mu)
        assert out.shape == (2, 2)
        assert out[0].tolist() == [3.0, 10.0]
        assert out[1].tolist() == [0.0, 0.0]


class TestValidationParity:
    """Array entry points raise the exact scalar ValueError text."""

    def _message(self, fn, *args):
        with pytest.raises(ValueError) as excinfo:
            fn(*args)
        return str(excinfo.value)

    def test_nan_load(self):
        scalar = self._message(erlang.min_servers, math.nan, 0.01)
        batched = self._message(
            vec.min_servers, np.array([1.0, math.nan]), 0.01
        )
        assert scalar == batched

    def test_negative_load(self):
        scalar = self._message(erlang.erlang_b, 3, -2.0)
        batched = self._message(vec.erlang_b, 3, np.array([1.0, -2.0]))
        assert scalar == batched

    def test_target_out_of_range(self):
        scalar = self._message(erlang.min_servers, 1.0, 1.5)
        batched = self._message(vec.min_servers, 1.0, np.array([0.5, 1.5]))
        assert scalar == batched

    def test_target_nan(self):
        scalar = self._message(erlang.min_servers, 1.0, math.nan)
        batched = self._message(
            vec.min_servers, np.ones(3), np.array([0.1, math.nan, 0.2])
        )
        assert scalar == batched

    def test_negative_server_count(self):
        scalar = self._message(erlang.erlang_b, -2, 3.0)
        batched = self._message(vec.erlang_b, np.array([1, -2]), 3.0)
        assert scalar == batched

    def test_validation_order_target_before_load(self):
        # min_servers has always validated the target first; both entry
        # points must agree when both inputs are bad.
        scalar = self._message(erlang.min_servers, math.nan, 2.0)
        batched = self._message(
            vec.min_servers, np.array([math.nan]), np.array([2.0])
        )
        assert scalar == batched
        assert "blocking target" in scalar

    def test_fractional_server_count_rejected(self):
        with pytest.raises(ValueError, match="integer"):
            vec.erlang_b(np.array([1.5]), 3.0)
