"""Unit tests for the Poisson arrival processes."""

import numpy as np
import pytest

from repro.analysis.stats import exponential_ks_test, poisson_dispersion
from repro.queueing.poisson import (
    interarrival_times,
    piecewise_poisson_arrivals,
    poisson_arrivals,
    superpose,
    superpose_marked,
    thinned_poisson_arrivals,
)


class TestHomogeneous:
    def test_sorted_within_horizon(self, rng):
        t = poisson_arrivals(10.0, 100.0, rng)
        assert (np.diff(t) >= 0).all()
        assert t.min() >= 0.0 and t.max() < 100.0

    def test_count_matches_rate(self, rng):
        t = poisson_arrivals(50.0, 1000.0, rng)
        assert len(t) == pytest.approx(50_000, rel=0.05)

    def test_zero_rate_empty(self, rng):
        assert poisson_arrivals(0.0, 10.0, rng).size == 0

    def test_interarrivals_are_exponential(self, rng):
        t = poisson_arrivals(5.0, 2000.0, rng)
        gaps = np.diff(t)
        assert exponential_ks_test(gaps, 5.0) > 0.01

    def test_counts_are_poisson_dispersed(self, rng):
        t = poisson_arrivals(20.0, 500.0, rng)
        counts, _ = np.histogram(t, bins=np.arange(0.0, 501.0, 1.0))
        assert poisson_dispersion(counts) == pytest.approx(1.0, abs=0.15)

    def test_rejects_bad_inputs(self, rng):
        with pytest.raises(ValueError):
            poisson_arrivals(-1.0, 10.0, rng)
        with pytest.raises(ValueError):
            poisson_arrivals(1.0, 0.0, rng)


class TestPiecewise:
    def test_rates_realised_per_segment(self, rng):
        bp = [0.0, 100.0, 200.0]
        t = piecewise_poisson_arrivals(bp, [5.0, 50.0], rng)
        first = ((t >= 0.0) & (t < 100.0)).sum()
        second = ((t >= 100.0) & (t < 200.0)).sum()
        assert first == pytest.approx(500, rel=0.2)
        assert second == pytest.approx(5000, rel=0.1)

    def test_zero_rate_segment_is_empty(self, rng):
        t = piecewise_poisson_arrivals([0.0, 10.0, 20.0], [0.0, 10.0], rng)
        assert (t >= 10.0).all()

    def test_output_sorted(self, rng):
        t = piecewise_poisson_arrivals([0.0, 1.0, 2.0, 3.0], [9.0, 1.0, 9.0], rng)
        assert (np.diff(t) >= 0).all()

    def test_rejects_mismatched_lengths(self, rng):
        with pytest.raises(ValueError):
            piecewise_poisson_arrivals([0.0, 1.0], [1.0, 2.0], rng)

    def test_rejects_unsorted_breakpoints(self, rng):
        with pytest.raises(ValueError):
            piecewise_poisson_arrivals([0.0, 2.0, 1.0], [1.0, 1.0], rng)


class TestThinned:
    def test_constant_rate_reduces_to_homogeneous(self, rng):
        t = thinned_poisson_arrivals(lambda x: np.full_like(x, 7.0), 7.0, 500.0, rng)
        assert len(t) == pytest.approx(3500, rel=0.1)

    def test_sinusoidal_rate_modulates_counts(self, rng):
        rate = lambda x: 10.0 * (1.0 + np.sin(2 * np.pi * x / 100.0)) / 2.0
        t = thinned_poisson_arrivals(rate, 10.0, 1000.0, rng)
        # Quarter around the sine peak (t=25 mod 100) should far exceed the
        # quarter around the trough (t=75 mod 100).
        phase = t % 100.0
        peak = ((phase > 12.5) & (phase < 37.5)).sum()
        trough = ((phase > 62.5) & (phase < 87.5)).sum()
        assert peak > 2.0 * trough

    def test_rejects_rate_exceeding_bound(self, rng):
        with pytest.raises(ValueError):
            thinned_poisson_arrivals(
                lambda x: np.full_like(x, 20.0), 10.0, 100.0, rng
            )


class TestSuperposition:
    def test_merge_preserves_counts_and_order(self, rng):
        a = poisson_arrivals(3.0, 100.0, rng)
        b = poisson_arrivals(7.0, 100.0, rng)
        merged = superpose(a, b)
        assert merged.size == a.size + b.size
        assert (np.diff(merged) >= 0).all()

    def test_superposed_stream_is_poisson_with_summed_rate(self, rng):
        # The consolidated-workload assumption: sum of Poissons is Poisson.
        streams = [poisson_arrivals(lam, 500.0, rng) for lam in (2.0, 5.0, 13.0)]
        merged = superpose(*streams)
        gaps = np.diff(merged)
        assert exponential_ks_test(gaps, 20.0) > 0.01

    def test_empty_inputs(self):
        assert superpose().size == 0
        assert superpose(np.empty(0), np.empty(0)).size == 0

    def test_marked_merge_tracks_origin(self, rng):
        a = poisson_arrivals(5.0, 50.0, rng)
        b = poisson_arrivals(5.0, 50.0, rng)
        marked = superpose_marked([a, b])
        assert len(marked) == a.size + b.size
        np.testing.assert_allclose(np.sort(marked.for_service(0)), a)
        np.testing.assert_allclose(np.sort(marked.for_service(1)), b)

    def test_marked_merge_sorted(self, rng):
        marked = superpose_marked(
            [poisson_arrivals(2.0, 30.0, rng), poisson_arrivals(9.0, 30.0, rng)]
        )
        assert (np.diff(marked.times) >= 0).all()


class TestInterarrivals:
    def test_prepends_zero(self):
        gaps = interarrival_times(np.array([1.0, 3.0, 6.0]))
        np.testing.assert_allclose(gaps, [1.0, 2.0, 3.0])

    def test_empty(self):
        assert interarrival_times(np.empty(0)).size == 0
