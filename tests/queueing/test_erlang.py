"""Unit tests for the Erlang formulas — the model's mathematical core."""

import math

import pytest

from repro.queueing.erlang import (
    erlang_b,
    erlang_b_continuous,
    erlang_b_derivative_n,
    erlang_b_log,
    erlang_b_recurrence,
    erlang_c,
    max_load_for_blocking,
    min_servers,
    min_servers_continuous,
    offered_load,
)

# Classic textbook values (Gross & Harris tables): (n, rho, E_n(rho)).
TEXTBOOK = [
    (1, 1.0, 0.5),
    (2, 1.0, 0.2),
    (3, 1.0, 1.0 / 16.0),
    (1, 2.0, 2.0 / 3.0),
    (2, 2.0, 0.4),
    (5, 3.0, 0.110054),
    (10, 5.0, 0.018385),
]


class TestOfferedLoad:
    def test_basic_ratio(self):
        assert offered_load(30.0, 10.0) == pytest.approx(3.0)

    def test_infinite_service_rate_is_zero_load(self):
        assert offered_load(100.0, math.inf) == 0.0

    def test_rejects_negative_arrivals(self):
        with pytest.raises(ValueError):
            offered_load(-1.0, 1.0)

    def test_rejects_nonpositive_service(self):
        with pytest.raises(ValueError):
            offered_load(1.0, 0.0)


class TestErlangB:
    @pytest.mark.parametrize("n,rho,expected", TEXTBOOK)
    def test_textbook_values(self, n, rho, expected):
        assert erlang_b(n, rho) == pytest.approx(expected, rel=1e-4)

    def test_zero_servers_blocks_everything(self):
        assert erlang_b(0, 2.5) == 1.0

    def test_zero_load_never_blocks(self):
        assert erlang_b(5, 0.0) == 0.0
        assert erlang_b(0, 0.0) == 1.0  # degenerate: no servers at all

    def test_monotone_decreasing_in_n(self):
        values = [erlang_b(n, 4.0) for n in range(0, 20)]
        assert all(a > b for a, b in zip(values, values[1:]))

    def test_monotone_increasing_in_rho(self):
        values = [erlang_b(5, rho) for rho in (0.5, 1.0, 2.0, 4.0, 8.0)]
        assert all(a < b for a, b in zip(values, values[1:]))

    def test_rejects_negative_inputs(self):
        with pytest.raises(ValueError):
            erlang_b(-1, 1.0)
        with pytest.raises(ValueError):
            erlang_b(1, -1.0)

    def test_recurrence_alias(self):
        with pytest.warns(DeprecationWarning, match="erlang_b_recurrence"):
            assert erlang_b(7, 3.3) == erlang_b_recurrence(7, 3.3)

    def test_deprecated_names_still_import(self):
        # The API redesign keeps every pre-vectorization name importable,
        # from both the module and the package root.
        from repro.queueing import erlang_b_recurrence as from_package
        from repro.queueing.erlang import erlang_b_recurrence as from_module

        assert from_package is from_module
        with pytest.warns(DeprecationWarning):
            assert from_package(3, 2.0) == erlang_b(3, 2.0)


class TestErlangBVariants:
    @pytest.mark.parametrize("n,rho,expected", TEXTBOOK)
    def test_log_domain_matches(self, n, rho, expected):
        assert erlang_b_log(n, rho) == pytest.approx(expected, rel=1e-4)
        assert erlang_b_log(n, rho) == pytest.approx(erlang_b(n, rho), rel=1e-9)

    @pytest.mark.parametrize("n,rho,expected", TEXTBOOK)
    def test_continuous_matches_at_integers(self, n, rho, expected):
        assert erlang_b_continuous(n, rho) == pytest.approx(expected, rel=1e-4)
        assert erlang_b_continuous(n, rho) == pytest.approx(erlang_b(n, rho), rel=1e-7)

    def test_log_domain_handles_huge_load(self):
        # rho^n/n! overflows float64 at these sizes; log domain must not.
        b = erlang_b_log(100_000, 99_000.0)
        assert 0.0 < b < 1.0
        assert b == pytest.approx(erlang_b(100_000, 99_000.0), rel=1e-6)

    def test_continuous_interpolates_monotonically(self):
        vals = [erlang_b_continuous(n, 3.0) for n in (2.0, 2.25, 2.5, 2.75, 3.0)]
        assert all(a > b for a, b in zip(vals, vals[1:]))

    def test_continuous_zero_load(self):
        assert erlang_b_continuous(0.0, 0.0) == 1.0
        assert erlang_b_continuous(2.5, 0.0) == 0.0

    def test_derivative_is_negative(self):
        assert erlang_b_derivative_n(5.0, 4.0) < 0.0


class TestErlangC:
    def test_relation_to_erlang_b(self):
        n, rho = 6, 4.0
        b = erlang_b(n, rho)
        expected = n * b / (n - rho * (1.0 - b))
        assert erlang_c(n, rho) == pytest.approx(expected)

    def test_unstable_system_always_queues(self):
        assert erlang_c(2, 2.0) == 1.0
        assert erlang_c(2, 5.0) == 1.0

    def test_exceeds_erlang_b(self):
        # Queueing probability > blocking probability for the same system.
        assert erlang_c(5, 3.0) > erlang_b(5, 3.0)

    def test_rejects_zero_servers(self):
        with pytest.raises(ValueError):
            erlang_c(0, 1.0)


class TestMinServers:
    def test_definition_holds(self):
        for rho in (0.3, 1.0, 5.0, 42.0):
            n = min_servers(rho, 0.01)
            assert erlang_b(n, rho) <= 0.01
            assert n == 0 or erlang_b(n - 1, rho) > 0.01

    def test_zero_load_needs_no_servers(self):
        assert min_servers(0.0, 0.01) == 0

    def test_stricter_target_needs_more_servers(self):
        assert min_servers(10.0, 0.001) >= min_servers(10.0, 0.1)

    def test_monotone_in_load(self):
        counts = [min_servers(rho, 0.01) for rho in (1.0, 2.0, 4.0, 8.0, 16.0)]
        assert all(a <= b for a, b in zip(counts, counts[1:]))

    def test_rejects_bad_target(self):
        with pytest.raises(ValueError):
            min_servers(1.0, 0.0)
        with pytest.raises(ValueError):
            min_servers(1.0, 1.0)

    @pytest.mark.parametrize("rho", [0.01, 0.455, 0.87, 3.0, 27.5, 500.0])
    @pytest.mark.parametrize("target", [0.001, 0.01, 0.1])
    def test_continuous_inversion_agrees(self, rho, target):
        assert min_servers_continuous(rho, target) == min_servers(rho, target)

    def test_continuous_inversion_large_scale(self):
        # A pooled mega-datacenter load: bisection stays fast and correct.
        n = min_servers_continuous(5000.0, 0.01)
        assert erlang_b_log(n, 5000.0) <= 0.01
        assert erlang_b_log(n - 1, 5000.0) > 0.01


class TestNonFiniteInputs:
    """Regression: NaN/inf inputs must raise, not return nonsense.

    Before validation was added, ``min_servers(nan, B)`` silently returned
    0 servers (NaN fails every comparison, so the scan loop never ran) and
    ``min_servers(inf, B)`` ground toward the 50M-server iteration ceiling.
    Either would poison a whole sweep — and with the shared cache, poison
    it *memoized*.  These tests pin the ValueError contract.
    """

    BAD_LOADS = [math.nan, math.inf, -math.inf]

    @pytest.mark.parametrize("rho", BAD_LOADS)
    def test_min_servers_rejects_nonfinite_load(self, rho):
        with pytest.raises(ValueError, match="finite"):
            min_servers(rho, 0.01)

    @pytest.mark.parametrize("rho", BAD_LOADS)
    def test_min_servers_continuous_rejects_nonfinite_load(self, rho):
        with pytest.raises(ValueError, match="finite"):
            min_servers_continuous(rho, 0.01)

    @pytest.mark.parametrize("rho", BAD_LOADS)
    def test_erlang_b_rejects_nonfinite_load(self, rho):
        with pytest.raises(ValueError, match="finite"):
            erlang_b(3, rho)
        with pytest.raises(ValueError, match="finite"):
            erlang_b_log(3, rho)
        with pytest.raises(ValueError, match="finite"):
            erlang_b_continuous(3.0, rho)
        with pytest.raises(ValueError, match="finite"):
            erlang_c(3, rho)

    @pytest.mark.parametrize("target", [math.nan, math.inf, -math.inf])
    def test_nonfinite_targets_rejected(self, target):
        with pytest.raises(ValueError, match="finite"):
            min_servers(1.0, target)
        with pytest.raises(ValueError, match="finite"):
            min_servers_continuous(1.0, target)
        with pytest.raises(ValueError, match="finite"):
            max_load_for_blocking(3, target)

    @pytest.mark.parametrize("target", [0.0, 1.0, -0.2, 1.7])
    def test_boundary_targets_rejected_everywhere(self, target):
        # B=0 is unreachable with finite servers, B=1 needs none: both are
        # ill-posed inversion targets and must fail fast with a message.
        with pytest.raises(ValueError, match="blocking target"):
            min_servers(2.0, target)
        with pytest.raises(ValueError, match="blocking target"):
            min_servers_continuous(2.0, target)
        with pytest.raises(ValueError, match="blocking target"):
            max_load_for_blocking(4, target)

    def test_offered_load_rejects_nonfinite_rates(self):
        with pytest.raises(ValueError, match="finite"):
            offered_load(math.inf, 1.0)
        with pytest.raises(ValueError, match="finite"):
            offered_load(math.nan, 1.0)
        with pytest.raises(ValueError):
            offered_load(1.0, math.nan)

    def test_error_messages_name_the_offender(self):
        with pytest.raises(ValueError, match="offered load"):
            min_servers(math.nan, 0.01)
        with pytest.raises(ValueError, match="blocking target"):
            min_servers(1.0, math.nan)


class TestMaxLoad:
    def test_inverse_of_min_servers(self):
        n, target = 4, 0.01
        rho_max = max_load_for_blocking(n, target)
        assert erlang_b(n, rho_max) <= target
        assert erlang_b(n, rho_max * 1.001) > target

    def test_case_study_boundary(self):
        # The paper's Group 2 DB island: 4 servers at B=1% afford ~0.87 erl.
        assert max_load_for_blocking(4, 0.01) == pytest.approx(0.869, abs=5e-3)

    def test_monotone_in_servers(self):
        loads = [max_load_for_blocking(n, 0.01) for n in (1, 2, 4, 8)]
        assert all(a < b for a, b in zip(loads, loads[1:]))

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            max_load_for_blocking(0, 0.01)
        with pytest.raises(ValueError):
            max_load_for_blocking(3, 1.5)
