"""Unit + validation tests for exact MVA and the closed-loop simulation."""

import numpy as np
import pytest

from repro.queueing.mva import exact_mva, throughput_bounds
from repro.simulation.closed_loop import simulate_closed_loop


class TestExactMva:
    def test_single_station_no_think_saturates_immediately(self):
        # Z = 0, one station: every customer queues there, X = 1/D for all n.
        for n in (1, 2, 10):
            result = exact_mva({"db": 0.25}, think_time=0.0, population=n)
            assert result.throughput == pytest.approx(4.0)
            assert result.queue_lengths["db"] == pytest.approx(float(n))

    def test_population_one_is_cycle_time_inverse(self):
        result = exact_mva({"a": 0.2, "b": 0.3}, think_time=1.5, population=1)
        assert result.throughput == pytest.approx(1.0 / 2.0)
        assert result.response_times["a"] == pytest.approx(0.2)

    def test_zero_population(self):
        result = exact_mva({"a": 1.0}, think_time=1.0, population=0)
        assert result.throughput == 0.0

    def test_throughput_monotone_in_population(self):
        xs = [
            exact_mva({"db": 0.1}, 7.0, n).throughput for n in (1, 10, 50, 200)
        ]
        assert all(a < b for a, b in zip(xs, xs[1:]))

    def test_respects_asymptotic_bounds(self):
        demands = {"web": 0.02, "db": 0.1}
        for n in (1, 5, 20, 100, 500):
            result = exact_mva(demands, 7.0, n)
            light, saturation = throughput_bounds(demands, 7.0, n)
            assert result.throughput <= min(light, saturation) + 1e-9

    def test_approaches_saturation_bound(self):
        demands = {"db": 0.1}
        result = exact_mva(demands, 7.0, 500)
        assert result.throughput == pytest.approx(10.0, rel=0.01)

    def test_light_load_approaches_interactive_law(self):
        demands = {"db": 0.1}
        result = exact_mva(demands, 7.0, 1)
        assert result.throughput == pytest.approx(1.0 / 7.1)

    def test_bottleneck_identified(self):
        result = exact_mva({"web": 0.02, "db": 0.3}, 1.0, 50)
        assert result.bottleneck == "db"

    def test_utilization_law(self):
        demands = {"web": 0.02, "db": 0.1}
        result = exact_mva(demands, 7.0, 40)
        utils = result.utilization(demands)
        assert utils["db"] == pytest.approx(result.throughput * 0.1)
        assert all(0.0 <= u <= 1.0 + 1e-9 for u in utils.values())

    def test_closed_loop_offered_wips_matches_tpcw_model(self):
        # The TpcwWorkload offered-rate law is MVA's light-load regime.
        from repro.workloads.tpcw import TpcwWorkload

        w = TpcwWorkload(emulated_browsers=100, think_time=7.0, response_time=0.1)
        result = exact_mva({"db": 0.1}, 7.0, 100)
        # At 100 EBs demand 0.1: bound min(100/7.1, 10) = 10; closed-loop law
        # offered = 14.08 is an overestimate past saturation — MVA refines it.
        assert result.throughput <= w.offered_wips
        assert result.throughput == pytest.approx(10.0, rel=0.05)

    def test_validation(self):
        with pytest.raises(ValueError):
            exact_mva({}, 1.0, 1)
        with pytest.raises(ValueError):
            exact_mva({"a": 0.0}, 1.0, 1)
        with pytest.raises(ValueError):
            exact_mva({"a": 1.0}, -1.0, 1)
        with pytest.raises(ValueError):
            exact_mva({"a": 1.0}, 1.0, -1)
        with pytest.raises(ValueError):
            throughput_bounds({}, 1.0, 1)


class TestClosedLoopSimulation:
    def test_matches_mva_moderate_population(self, rng):
        demands = {"web": 0.05, "db": 0.2}
        mva = exact_mva(demands, think_time=2.0, population=8)
        sim = simulate_closed_loop(8, 2.0, demands, 4000.0, rng)
        assert sim.throughput == pytest.approx(mva.throughput, rel=0.08)

    def test_matches_mva_saturated(self, rng):
        demands = {"db": 0.25}
        mva = exact_mva(demands, think_time=1.0, population=20)
        sim = simulate_closed_loop(20, 1.0, demands, 3000.0, rng)
        assert sim.throughput == pytest.approx(mva.throughput, rel=0.08)
        assert sim.per_station_utilization["db"] > 0.9

    def test_utilization_law_holds(self, rng):
        demands = {"db": 0.2}
        sim = simulate_closed_loop(5, 3.0, demands, 4000.0, rng)
        assert sim.per_station_utilization["db"] == pytest.approx(
            sim.throughput * 0.2, rel=0.1
        )

    def test_cycle_time_interactive_law(self, rng):
        # X = N / (Z + R)  =>  R_measured ~ N/X - Z.
        demands = {"db": 0.2}
        sim = simulate_closed_loop(6, 3.0, demands, 4000.0, rng)
        r_from_law = 6 / sim.throughput - 3.0
        # mean_cycle_time includes think; subtract it.
        assert sim.mean_cycle_time - 3.0 == pytest.approx(r_from_law, rel=0.15)

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            simulate_closed_loop(0, 1.0, {"a": 1.0}, 10.0, rng)
        with pytest.raises(ValueError):
            simulate_closed_loop(1, -1.0, {"a": 1.0}, 10.0, rng)
        with pytest.raises(ValueError):
            simulate_closed_loop(1, 1.0, {}, 10.0, rng)
        with pytest.raises(ValueError):
            simulate_closed_loop(1, 1.0, {"a": 1.0}, 0.0, rng)
