"""Unit tests for the service-time distribution family."""

import math

import numpy as np
import pytest

from repro.queueing.distributions import (
    Deterministic,
    Empirical,
    ErlangK,
    Exponential,
    HyperExponential,
    LogNormal,
    ParetoBounded,
    Uniform,
    as_distribution,
)

ALL_DISTS = [
    Exponential(2.0),
    Deterministic(0.5),
    Uniform(0.1, 0.9),
    ErlangK(k=4, lam=8.0),
    HyperExponential(probs=(0.3, 0.7), rates=(1.0, 5.0)),
    LogNormal.from_mean_scv(0.5, 2.0),
    ParetoBounded(alpha=1.5, low=0.1, high=10.0),
    Empirical([0.2, 0.4, 0.6, 0.8]),
]


@pytest.mark.parametrize("dist", ALL_DISTS, ids=lambda d: type(d).__name__)
class TestCommonContract:
    def test_sample_scalar(self, dist, rng):
        x = dist.sample(rng)
        assert np.isscalar(x) or np.asarray(x).shape == ()
        assert float(x) >= 0.0

    def test_sample_vector_shape(self, dist, rng):
        xs = np.asarray(dist.sample(rng, 1000))
        assert xs.shape == (1000,)
        assert (xs >= 0.0).all()

    def test_empirical_mean_matches_analytic(self, dist, rng):
        xs = np.asarray(dist.sample(rng, 200_000))
        assert xs.mean() == pytest.approx(dist.mean, rel=0.05)

    def test_empirical_variance_matches_analytic(self, dist, rng):
        if isinstance(dist, ParetoBounded):
            pytest.skip("heavy tail needs too many samples for variance")
        xs = np.asarray(dist.sample(rng, 200_000))
        assert xs.var() == pytest.approx(dist.variance, rel=0.10, abs=1e-12)

    def test_rate_is_reciprocal_mean(self, dist):
        assert dist.rate == pytest.approx(1.0 / dist.mean)

    def test_scaled_mean_and_variance(self, dist):
        s = dist.scaled(3.0)
        assert s.mean == pytest.approx(3.0 * dist.mean)
        assert s.variance == pytest.approx(9.0 * dist.variance)

    def test_scaled_samples_scale(self, dist, rng_factory):
        a = np.asarray(dist.sample(rng_factory(1), 100))
        b = np.asarray(dist.scaled(2.0).sample(rng_factory(1), 100))
        np.testing.assert_allclose(b, 2.0 * a)


class TestExponential:
    def test_scv_is_one(self):
        assert Exponential(3.7).scv == pytest.approx(1.0)

    def test_from_mean(self):
        assert Exponential.from_mean(0.25).lam == pytest.approx(4.0)

    def test_rejects_nonpositive_rate(self):
        with pytest.raises(ValueError):
            Exponential(0.0)
        with pytest.raises(ValueError):
            Exponential(-1.0)


class TestDeterministic:
    def test_zero_variance(self):
        assert Deterministic(2.0).variance == 0.0

    def test_samples_constant(self, rng):
        assert set(np.asarray(Deterministic(2.0).sample(rng, 10))) == {2.0}

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            Deterministic(-0.1)


class TestErlangK:
    def test_scv_is_one_over_k(self):
        assert ErlangK(k=5, lam=1.0).scv == pytest.approx(0.2)

    def test_from_mean(self):
        d = ErlangK.from_mean(2.0, k=3)
        assert d.mean == pytest.approx(2.0)
        assert d.k == 3

    def test_k1_matches_exponential_mean(self):
        assert ErlangK(k=1, lam=4.0).mean == Exponential(4.0).mean

    def test_rejects_bad_k(self):
        with pytest.raises(ValueError):
            ErlangK(k=0, lam=1.0)


class TestHyperExponential:
    def test_balanced_fit_matches_moments(self):
        d = HyperExponential.balanced_two_phase(mean=2.0, scv=4.0)
        assert d.mean == pytest.approx(2.0)
        assert d.scv == pytest.approx(4.0)

    def test_balanced_fit_rejects_scv_below_one(self):
        with pytest.raises(ValueError):
            HyperExponential.balanced_two_phase(1.0, 0.5)

    def test_rejects_non_distribution_probs(self):
        with pytest.raises(ValueError):
            HyperExponential(probs=(0.5, 0.6), rates=(1.0, 2.0))

    def test_rejects_length_mismatch(self):
        with pytest.raises(ValueError):
            HyperExponential(probs=(1.0,), rates=(1.0, 2.0))


class TestLogNormal:
    def test_from_mean_scv_roundtrip(self):
        d = LogNormal.from_mean_scv(3.0, 1.5)
        assert d.mean == pytest.approx(3.0)
        assert d.scv == pytest.approx(1.5)

    def test_rejects_nonpositive_mean(self):
        with pytest.raises(ValueError):
            LogNormal.from_mean_scv(0.0, 1.0)


class TestParetoBounded:
    def test_samples_respect_bounds(self, rng):
        d = ParetoBounded(alpha=1.1, low=1.0, high=100.0)
        xs = np.asarray(d.sample(rng, 10_000))
        assert xs.min() >= 1.0 - 1e-9
        assert xs.max() <= 100.0 + 1e-9

    def test_rejects_bad_bounds(self):
        with pytest.raises(ValueError):
            ParetoBounded(alpha=1.0, low=5.0, high=1.0)

    def test_mean_at_alpha_equal_one(self, rng):
        # alpha == k hits the logarithmic branch of the moment formula.
        d = ParetoBounded(alpha=1.0, low=1.0, high=50.0)
        xs = np.asarray(d.sample(rng, 400_000))
        assert xs.mean() == pytest.approx(d.mean, rel=0.05)


class TestEmpirical:
    def test_resamples_only_observed_values(self, rng):
        d = Empirical([1.0, 2.0, 3.0])
        assert set(np.asarray(d.sample(rng, 1000))) <= {1.0, 2.0, 3.0}

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            Empirical([])

    def test_rejects_negative_values(self):
        with pytest.raises(ValueError):
            Empirical([1.0, -0.5])

    def test_values_returns_copy(self):
        d = Empirical([1.0, 2.0])
        v = d.values
        v[0] = 99.0
        assert d.mean == pytest.approx(1.5)


class TestAsDistribution:
    def test_passthrough(self):
        d = Exponential(1.0)
        assert as_distribution(d) is d

    def test_number_becomes_exponential_mean(self):
        d = as_distribution(0.5)
        assert isinstance(d, Exponential)
        assert d.mean == pytest.approx(0.5)

    def test_sequence_becomes_empirical(self):
        d = as_distribution([1.0, 3.0])
        assert isinstance(d, Empirical)
        assert d.mean == pytest.approx(2.0)


class TestScaled:
    def test_rejects_nonpositive_factor(self):
        with pytest.raises(ValueError):
            Exponential(1.0).scaled(0.0)

    def test_impact_factor_semantics(self):
        # Degrading the serving rate by a=0.8 stretches times by 1/0.8.
        base = Exponential(10.0)
        slowed = base.scaled(1.0 / 0.8)
        assert slowed.rate == pytest.approx(10.0 * 0.8)
