"""Unit + validation tests for the Engset finite-source loss model."""

import math

import numpy as np
import pytest

from repro.queueing.engset import (
    engset_call_congestion,
    engset_min_servers,
    engset_time_congestion,
)
from repro.queueing.erlang import erlang_b, min_servers


class TestTimeCongestion:
    def test_single_server_single_source(self):
        # One source, one server: never all-busy from the arrival's view,
        # but time congestion is a/(1+a) (fraction of time the source is
        # in service).
        a = 0.5
        assert engset_time_congestion(1, 1, a) == pytest.approx(a / (1.0 + a))

    def test_fewer_sources_than_servers_never_blocks(self):
        assert engset_time_congestion(5, 3, 1.0) == 0.0

    def test_zero_intensity(self):
        assert engset_time_congestion(3, 10, 0.0) == 0.0
        assert engset_time_congestion(0, 10, 0.0) == 1.0

    def test_monotone_in_servers(self):
        values = [engset_time_congestion(n, 20, 0.3) for n in range(1, 10)]
        assert all(x > y for x, y in zip(values, values[1:]))

    def test_monotone_in_sources(self):
        values = [engset_time_congestion(4, s, 0.3) for s in (5, 10, 20, 40)]
        assert all(x < y for x, y in zip(values, values[1:]))

    def test_large_population_stable(self):
        # Log-domain evaluation must survive S = 100k.
        value = engset_time_congestion(50, 100_000, 0.0004)
        assert 0.0 <= value <= 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            engset_time_congestion(-1, 5, 0.1)
        with pytest.raises(ValueError):
            engset_time_congestion(1, 0, 0.1)
        with pytest.raises(ValueError):
            engset_time_congestion(1, 5, -0.1)


class TestCallCongestion:
    def test_arrival_theorem(self):
        assert engset_call_congestion(3, 10, 0.4) == pytest.approx(
            engset_time_congestion(3, 9, 0.4)
        )

    def test_below_time_congestion(self):
        # Arriving customers see fewer competitors: B < E.
        assert engset_call_congestion(3, 10, 0.4) < engset_time_congestion(
            3, 10, 0.4
        )

    def test_population_at_most_servers_never_blocked(self):
        assert engset_call_congestion(5, 5, 10.0) == 0.0

    def test_converges_to_erlang_b_for_large_population(self):
        # S -> inf with S*a' -> rho: Engset -> Erlang B.
        servers, rho = 4, 2.0
        for sources in (50, 500, 5000):
            a = rho / (sources - rho)  # so that offered load ~ rho
            engset = engset_call_congestion(servers, sources, a)
            assert engset == pytest.approx(
                erlang_b(servers, rho), abs=0.02 if sources < 100 else 0.004
            )

    def test_finite_population_blocks_less_than_erlang(self):
        # Self-throttling: at the same nominal rho, Engset < Erlang B.
        servers, sources = 4, 10
        rho = 3.0
        a = rho / (sources - rho)
        assert engset_call_congestion(servers, sources, a) < erlang_b(servers, rho)


class TestMinServers:
    def test_definition_holds(self):
        n = engset_min_servers(30, 0.1, 0.01)
        assert engset_call_congestion(n, 30, 0.1) <= 0.01
        assert engset_call_congestion(n - 1, 30, 0.1) > 0.01

    def test_never_more_than_sources(self):
        assert engset_min_servers(6, 100.0, 0.001) <= 6

    def test_fewer_servers_than_erlang_sizing(self):
        # The infinite-source (paper) sizing over-provisions for small
        # populations: Engset needs no more servers.
        sources, rho, b = 12, 4.0, 0.01
        a = rho / (sources - rho)
        erlang_n = min_servers(rho, b)
        engset_n = engset_min_servers(sources, a, b)
        assert engset_n <= erlang_n

    def test_validation(self):
        with pytest.raises(ValueError):
            engset_min_servers(10, 0.1, 0.0)
        with pytest.raises(ValueError):
            engset_min_servers(0, 0.1, 0.1)
        with pytest.raises(ValueError):
            engset_min_servers(10, -0.1, 0.1)


class TestAgainstClosedLoopSimulation:
    def test_engset_time_congestion_matches_birth_death(self):
        # Independent route: finite-source birth-death chain.
        from repro.queueing.birth_death import BirthDeathChain

        servers, sources, alpha, mu = 3, 8, 0.2, 1.0
        births = [(sources - k) * alpha for k in range(servers)]
        deaths = [min(k + 1, servers) * mu for k in range(servers)]
        chain = BirthDeathChain(births, deaths)
        pi = chain.stationary_distribution()
        assert pi[-1] == pytest.approx(
            engset_time_congestion(servers, sources, alpha / mu), rel=1e-9
        )
