"""Unit tests for the birth–death chain cross-check."""

import numpy as np
import pytest

from repro.queueing.birth_death import BirthDeathChain, loss_system_chain
from repro.queueing.erlang import erlang_b


class TestChainBasics:
    def test_stationary_sums_to_one(self):
        chain = BirthDeathChain([1.0, 2.0, 3.0], [2.0, 2.0, 2.0])
        pi = chain.stationary_distribution()
        assert pi.sum() == pytest.approx(1.0)
        assert (pi >= 0).all()

    def test_two_methods_agree(self):
        chain = BirthDeathChain([5.0, 4.0, 3.0, 2.0], [1.0, 2.0, 3.0, 4.0])
        np.testing.assert_allclose(
            chain.stationary_distribution(),
            chain.stationary_distribution_linear(),
            atol=1e-10,
        )

    def test_extreme_rate_ratio_stays_finite(self):
        # Detailed balance in the log domain must survive huge ratios.
        chain = BirthDeathChain([1e8] * 50, [1e-4] * 50)
        pi = chain.stationary_distribution()
        assert np.isfinite(pi).all()
        assert pi.sum() == pytest.approx(1.0)

    def test_mean_state(self):
        # Symmetric random walk on {0, 1, 2}: uniform stationary, mean 1.
        chain = BirthDeathChain([1.0, 1.0], [1.0, 1.0])
        assert chain.mean_state() == pytest.approx(1.0)

    def test_rejects_bad_rates(self):
        with pytest.raises(ValueError):
            BirthDeathChain([1.0], [0.0])
        with pytest.raises(ValueError):
            BirthDeathChain([-1.0], [1.0])
        with pytest.raises(ValueError):
            BirthDeathChain([1.0, 2.0], [1.0])


class TestLossSystemEquivalence:
    @pytest.mark.parametrize("servers,lam,mu", [(1, 1.0, 1.0), (3, 2.0, 1.0), (5, 10.0, 3.0), (10, 4.0, 1.0)])
    def test_pi_n_equals_erlang_b(self, servers, lam, mu):
        # PASTA: the chain's all-busy probability IS the blocking probability.
        chain = loss_system_chain(lam, mu, servers)
        pi = chain.stationary_distribution()
        assert pi[-1] == pytest.approx(erlang_b(servers, lam / mu), rel=1e-9)

    def test_mean_state_equals_carried_load(self):
        lam, mu, n = 6.0, 2.0, 4
        rho = lam / mu
        chain = loss_system_chain(lam, mu, n)
        carried = rho * (1.0 - erlang_b(n, rho))
        assert chain.mean_state() == pytest.approx(carried, rel=1e-9)

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            loss_system_chain(1.0, 1.0, 0)
        with pytest.raises(ValueError):
            loss_system_chain(0.0, 1.0, 2)
