"""Unit tests for PhysicalServer and ServerPool."""

import pytest

from repro.cluster.pool import ServerPool
from repro.cluster.server import PhysicalServer
from repro.core.inputs import ResourceKind
from repro.core.power import ServerPowerModel

CPU = ResourceKind.CPU
DISK = ResourceKind.DISK_IO


class TestPhysicalServer:
    def test_defaults(self):
        s = PhysicalServer()
        assert s.powered_on
        assert s.utilization(CPU) == 0.0
        assert s.power_draw() == pytest.approx(250.0)

    def test_power_draw_follows_dominant_utilization(self):
        s = PhysicalServer(power_model=ServerPowerModel(100.0, 200.0))
        s.set_utilization(CPU, 0.2)
        s.set_utilization(DISK, 0.6)
        assert s.dominant_utilization == pytest.approx(0.6)
        assert s.power_draw() == pytest.approx(160.0)

    def test_power_off_zeroes_everything(self):
        s = PhysicalServer()
        s.set_utilization(CPU, 0.9)
        s.power_off()
        assert s.power_draw() == 0.0
        assert s.idle_draw() == 0.0
        assert s.utilization(CPU) == 0.0

    def test_cannot_load_powered_off_server(self):
        s = PhysicalServer()
        s.power_off()
        with pytest.raises(RuntimeError):
            s.set_utilization(CPU, 0.5)

    def test_unknown_resource_raises(self):
        s = PhysicalServer(capacity={CPU: 1.0})
        with pytest.raises(KeyError):
            s.set_utilization(DISK, 0.5)

    def test_rejects_bad_utilization(self):
        s = PhysicalServer()
        with pytest.raises(ValueError):
            s.set_utilization(CPU, 1.5)

    def test_rejects_bad_capacity(self):
        with pytest.raises(ValueError):
            PhysicalServer(capacity={})
        with pytest.raises(ValueError):
            PhysicalServer(capacity={CPU: 0.0})

    def test_auto_names_unique(self):
        a, b = PhysicalServer(), PhysicalServer()
        assert a.name != b.name


class TestServerPool:
    def test_homogeneous_factory(self):
        pool = ServerPool.homogeneous(4)
        assert len(pool) == 4
        assert pool.total_capacity(CPU) == pytest.approx(4.0)

    def test_duplicate_names_rejected(self):
        s = PhysicalServer(name="x")
        t = PhysicalServer(name="x")
        with pytest.raises(ValueError):
            ServerPool([s, t])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ServerPool([])

    def test_by_name(self):
        pool = ServerPool.homogeneous(2, name_prefix="srv")
        assert pool.by_name("srv-1").name == "srv-1"
        with pytest.raises(KeyError):
            pool.by_name("nope")

    def test_shrink_powers_off_excess(self):
        pool = ServerPool.homogeneous(8)
        switched = pool.shrink_to(4)
        assert switched == 4
        assert len(pool.powered_on) == 4
        assert pool.total_capacity(CPU) == pytest.approx(4.0)

    def test_grow_restores(self):
        pool = ServerPool.homogeneous(8)
        pool.shrink_to(3)
        assert pool.grow_to(6) == 3
        assert len(pool.powered_on) == 6

    def test_shrink_grow_idempotent(self):
        pool = ServerPool.homogeneous(4)
        assert pool.shrink_to(10) == 0
        assert pool.grow_to(2) == 0  # already above

    def test_total_draw_reflects_shrink(self):
        pool = ServerPool.homogeneous(8)
        full = pool.total_draw()
        pool.shrink_to(4)
        assert pool.total_draw() == pytest.approx(full / 2.0)

    def test_uniform_load_and_mean_utilization(self):
        pool = ServerPool.homogeneous(4)
        pool.apply_uniform_load(CPU, 0.5)
        assert pool.mean_utilization(CPU) == pytest.approx(0.5)

    def test_uniform_load_skips_powered_off(self):
        pool = ServerPool.homogeneous(4)
        pool.shrink_to(2)
        pool.apply_uniform_load(CPU, 0.8)
        assert pool.mean_utilization(CPU) == pytest.approx(0.8)
        assert pool.total_draw() > 0.0

    def test_rejects_negative_counts(self):
        pool = ServerPool.homogeneous(2)
        with pytest.raises(ValueError):
            pool.shrink_to(-1)
        with pytest.raises(ValueError):
            pool.grow_to(-1)
        with pytest.raises(ValueError):
            ServerPool.homogeneous(0)
