"""Property-based tests for availability / redundancy planning."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.availability import (
    ServerReliability,
    expected_loss_with_failures,
    fleet_up_probability,
    servers_with_redundancy,
)
from repro.queueing.erlang import erlang_b

mtbfs = st.floats(min_value=10.0, max_value=100_000.0, allow_nan=False)
mttrs = st.floats(min_value=0.1, max_value=500.0, allow_nan=False)
fleets = st.integers(min_value=1, max_value=40)
loads = st.floats(min_value=0.0, max_value=30.0, allow_nan=False)


@st.composite
def reliabilities(draw):
    return ServerReliability(mtbf=draw(mtbfs), mttr=draw(mttrs))


@settings(max_examples=60, deadline=None)
@given(fleets, st.integers(min_value=0, max_value=40), reliabilities())
def test_up_probability_is_probability(fleet, required, rel):
    p = fleet_up_probability(fleet, required, rel)
    assert 0.0 <= p <= 1.0


@settings(max_examples=60, deadline=None)
@given(fleets, reliabilities())
def test_up_probability_monotone_in_requirement(fleet, rel):
    probs = [fleet_up_probability(fleet, r, rel) for r in range(fleet + 1)]
    assert all(a >= b - 1e-12 for a, b in zip(probs, probs[1:]))


@settings(max_examples=60, deadline=None)
@given(st.integers(min_value=1, max_value=20), reliabilities(),
       st.floats(min_value=0.5, max_value=0.9999))
def test_redundancy_sizing_definition(required, rel, assurance):
    fleet = servers_with_redundancy(required, rel, assurance)
    assert fleet >= required
    assert fleet_up_probability(fleet, required, rel) >= assurance - 1e-12


@settings(max_examples=60, deadline=None)
@given(fleets, loads, reliabilities())
def test_failure_averaged_loss_bounds(fleet, load, rel):
    value = expected_loss_with_failures(fleet, load, rel)
    # Bounded by the failure-free Erlang value below and 1 above.
    assert erlang_b(fleet, load) - 1e-12 <= value <= 1.0


@settings(max_examples=40, deadline=None)
@given(fleets, loads, reliabilities(), st.integers(min_value=1, max_value=5))
def test_spares_reduce_expected_loss(fleet, load, rel, spares):
    base = expected_loss_with_failures(fleet, load, rel)
    with_spares = expected_loss_with_failures(fleet + spares, load, rel)
    assert with_spares <= base + 1e-12
