"""Unit tests for the simulated power meter."""

import numpy as np
import pytest

from repro.cluster.pool import ServerPool
from repro.cluster.power_meter import PowerMeter, apply_platform_effect
from repro.core.inputs import ResourceKind
from repro.core.power import ServerPowerModel

CPU = ResourceKind.CPU


def make_pool(n=4, base=100.0, mx=200.0):
    return ServerPool.homogeneous(n, power_model=ServerPowerModel(base, mx))


class TestPowerMeter:
    def test_idle_fleet_energy(self):
        pool = make_pool(4)
        meter = PowerMeter(pool)
        meter.sample(0.0)
        meter.sample(10.0)
        reading = meter.reading()
        assert reading.total_energy == pytest.approx(4 * 100.0 * 10.0)
        assert reading.idle_energy == pytest.approx(reading.total_energy)
        assert reading.workload_energy == pytest.approx(0.0)
        assert reading.mean_power == pytest.approx(400.0)

    def test_loaded_fleet_energy(self):
        pool = make_pool(2)
        meter = PowerMeter(pool)
        meter.sample(0.0)
        pool.apply_uniform_load(CPU, 1.0)
        meter.sample(0.0)  # register the new state at t=0
        meter.sample(5.0)
        reading = meter.reading()
        assert reading.total_energy == pytest.approx(2 * 200.0 * 5.0)
        assert reading.idle_energy == pytest.approx(2 * 100.0 * 5.0)
        assert reading.workload_energy == pytest.approx(1000.0)
        assert reading.busy_over_idle == pytest.approx(1.0)

    def test_step_change_midway(self):
        pool = make_pool(1)
        meter = PowerMeter(pool)
        meter.sample(0.0)
        meter.sample(5.0)  # idle for 5 s
        pool.apply_uniform_load(CPU, 1.0)
        meter.sample(5.0)  # state change at t=5
        meter.sample(10.0)  # loaded for 5 s
        reading = meter.reading()
        assert reading.total_energy == pytest.approx(100.0 * 5.0 + 200.0 * 5.0)

    def test_out_of_order_samples_rejected(self):
        meter = PowerMeter(make_pool(1))
        meter.sample(5.0)
        with pytest.raises(ValueError):
            meter.sample(4.0)

    def test_empty_reading(self):
        reading = PowerMeter(make_pool(1)).reading()
        assert reading.duration == 0.0
        assert reading.total_energy == 0.0
        assert reading.samples == 0

    def test_integrate_profile(self):
        pool = make_pool(1)
        meter = PowerMeter(pool)
        times = np.array([0.0, 10.0, 20.0])
        utils = np.array([0.0, 1.0, 1.0])
        reading = meter.integrate_profile(times, utils)
        # 10 s idle + 10 s full load.
        assert reading.total_energy == pytest.approx(100.0 * 10.0 + 200.0 * 10.0)
        assert reading.duration == pytest.approx(20.0)

    def test_integrate_profile_validation(self):
        meter = PowerMeter(make_pool(1))
        with pytest.raises(ValueError):
            meter.integrate_profile(np.array([0.0]), np.array([0.0]))
        with pytest.raises(ValueError):
            meter.integrate_profile(np.array([0.0, 1.0]), np.array([0.0, 2.0]))
        with pytest.raises(ValueError):
            meter.integrate_profile(np.array([1.0, 0.0]), np.array([0.0, 0.0]))


class TestPlatformEffect:
    def test_idle_factor_scales_base(self):
        pool = make_pool(2, base=100.0, mx=200.0)
        apply_platform_effect(pool, idle_factor=0.91, dynamic_factor=1.0)
        assert pool.total_idle_draw() == pytest.approx(2 * 91.0)
        # Dynamic range preserved.
        pool.apply_uniform_load(CPU, 1.0)
        assert pool.total_draw() == pytest.approx(2 * (91.0 + 100.0))

    def test_dynamic_factor_scales_range(self):
        pool = make_pool(1, base=100.0, mx=200.0)
        apply_platform_effect(pool, idle_factor=1.0, dynamic_factor=0.7)
        pool.apply_uniform_load(CPU, 1.0)
        assert pool.total_draw() == pytest.approx(100.0 + 70.0)

    def test_rejects_bad_factors(self):
        with pytest.raises(ValueError):
            apply_platform_effect(make_pool(1), idle_factor=0.0)
