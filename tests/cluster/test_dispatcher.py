"""Unit tests for the LVS-style dispatchers."""

import collections

import numpy as np
import pytest

from repro.cluster.dispatcher import (
    LeastConnectionsDispatcher,
    RandomDispatcher,
    RoundRobinDispatcher,
    WeightedRoundRobinDispatcher,
    make_dispatcher,
)


class TestRoundRobin:
    def test_strict_rotation(self):
        d = RoundRobinDispatcher(3)
        assert [d.pick() for _ in range(7)] == [0, 1, 2, 0, 1, 2, 0]

    def test_perfect_balance(self):
        d = RoundRobinDispatcher(4)
        counts = collections.Counter(d.pick() for _ in range(400))
        assert set(counts.values()) == {100}

    def test_rejects_zero_backends(self):
        with pytest.raises(ValueError):
            RoundRobinDispatcher(0)

    def test_in_flight_length_checked(self):
        d = RoundRobinDispatcher(2)
        with pytest.raises(ValueError):
            d.pick(in_flight=[0])


class TestWeightedRoundRobin:
    def test_weights_respected(self):
        d = WeightedRoundRobinDispatcher([3, 1])
        counts = collections.Counter(d.pick() for _ in range(400))
        assert counts[0] == 300
        assert counts[1] == 100

    def test_smooth_interleaving(self):
        # Smooth WRR spreads the heavy backend rather than bursting it.
        d = WeightedRoundRobinDispatcher([2, 1])
        seq = [d.pick() for _ in range(6)]
        assert seq == [0, 1, 0, 0, 1, 0]

    def test_rejects_bad_weights(self):
        with pytest.raises(ValueError):
            WeightedRoundRobinDispatcher([0, 1])


class TestRandom:
    def test_roughly_uniform(self):
        d = RandomDispatcher(4, rng=np.random.default_rng(7))
        counts = collections.Counter(d.pick() for _ in range(4000))
        for i in range(4):
            assert counts[i] == pytest.approx(1000, rel=0.15)


class TestLeastConnections:
    def test_picks_least_loaded(self):
        d = LeastConnectionsDispatcher(3)
        assert d.pick(in_flight=[5, 2, 7]) == 1

    def test_ties_rotate(self):
        d = LeastConnectionsDispatcher(3)
        picks = [d.pick(in_flight=[0, 0, 0]) for _ in range(3)]
        assert sorted(picks) == [0, 1, 2]

    def test_requires_in_flight(self):
        d = LeastConnectionsDispatcher(2)
        with pytest.raises(ValueError):
            d.pick()


class TestFactory:
    def test_policies(self):
        assert isinstance(make_dispatcher("rr", 2), RoundRobinDispatcher)
        assert isinstance(
            make_dispatcher("wrr", 2, weights=[1, 2]), WeightedRoundRobinDispatcher
        )
        assert isinstance(make_dispatcher("lc", 2), LeastConnectionsDispatcher)
        assert isinstance(make_dispatcher("random", 2), RandomDispatcher)

    def test_wrr_requires_weights(self):
        with pytest.raises(ValueError):
            make_dispatcher("wrr", 2)

    def test_unknown_policy(self):
        with pytest.raises(ValueError):
            make_dispatcher("magic", 2)
