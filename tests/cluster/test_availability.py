"""Unit tests for availability / N+k redundancy planning."""

import pytest

from repro.cluster.availability import (
    ServerReliability,
    expected_loss_with_failures,
    fleet_up_probability,
    servers_with_redundancy,
)
from repro.queueing.erlang import erlang_b


GOOD = ServerReliability(mtbf=4380.0, mttr=8.0)      # A ~ 0.9982
FLAKY = ServerReliability(mtbf=100.0, mttr=20.0)     # A ~ 0.833


class TestServerReliability:
    def test_availability(self):
        assert GOOD.availability == pytest.approx(4380.0 / 4388.0)
        assert FLAKY.availability == pytest.approx(100.0 / 120.0)

    def test_annual_failures(self):
        assert GOOD.annual_failures == pytest.approx(8766.0 / 4380.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            ServerReliability(mtbf=0.0, mttr=1.0)
        with pytest.raises(ValueError):
            ServerReliability(mtbf=1.0, mttr=0.0)


class TestFleetUpProbability:
    def test_single_machine(self):
        assert fleet_up_probability(1, 1, GOOD) == pytest.approx(GOOD.availability)

    def test_zero_required_always_met(self):
        assert fleet_up_probability(0, 0, FLAKY) == 1.0
        assert fleet_up_probability(5, 0, FLAKY) == 1.0

    def test_more_required_than_fleet(self):
        assert fleet_up_probability(3, 4, GOOD) == 0.0

    def test_monotone_in_fleet(self):
        probs = [fleet_up_probability(n, 4, FLAKY) for n in range(4, 10)]
        assert all(a <= b + 1e-12 for a, b in zip(probs, probs[1:]))

    def test_validation(self):
        with pytest.raises(ValueError):
            fleet_up_probability(-1, 0, GOOD)


class TestRedundancySizing:
    def test_definition_holds(self):
        n = servers_with_redundancy(4, FLAKY, assurance=0.99)
        assert fleet_up_probability(n, 4, FLAKY) >= 0.99
        assert fleet_up_probability(n - 1, 4, FLAKY) < 0.99

    def test_reliable_hardware_needs_little(self):
        # A = 99.8%: one spare covers 4-required at 3 nines.
        n = servers_with_redundancy(4, GOOD, assurance=0.999)
        assert n <= 5

    def test_flaky_hardware_needs_more(self):
        n_good = servers_with_redundancy(8, GOOD, assurance=0.999)
        n_flaky = servers_with_redundancy(8, FLAKY, assurance=0.999)
        assert n_flaky > n_good

    def test_tighter_assurance_more_servers(self):
        lax = servers_with_redundancy(6, FLAKY, assurance=0.9)
        tight = servers_with_redundancy(6, FLAKY, assurance=0.9999)
        assert tight >= lax

    def test_zero_required(self):
        assert servers_with_redundancy(0, FLAKY) == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            servers_with_redundancy(-1, GOOD)
        with pytest.raises(ValueError):
            servers_with_redundancy(1, GOOD, assurance=1.0)


class TestExpectedLossWithFailures:
    def test_perfect_hardware_reduces_to_erlang(self):
        solid = ServerReliability(mtbf=1e12, mttr=1e-6)
        assert expected_loss_with_failures(4, 2.0, solid) == pytest.approx(
            erlang_b(4, 2.0), abs=1e-9
        )

    def test_failures_raise_expected_loss(self):
        healthy = erlang_b(4, 2.0)
        assert expected_loss_with_failures(4, 2.0, FLAKY) > healthy

    def test_redundant_fleet_restores_target(self):
        # Size the fleet for load, then add redundancy: expected loss with
        # failures returns near the no-failure target.
        from repro.queueing.erlang import min_servers

        required = min_servers(2.0, 0.01)
        fleet = servers_with_redundancy(required, FLAKY, assurance=0.99)
        degraded = expected_loss_with_failures(required, 2.0, FLAKY)
        restored = expected_loss_with_failures(fleet, 2.0, FLAKY)
        assert restored < degraded
        assert restored < 0.02

    def test_validation(self):
        with pytest.raises(ValueError):
            expected_loss_with_failures(-1, 1.0, GOOD)
        with pytest.raises(ValueError):
            expected_loss_with_failures(1, -1.0, GOOD)
