"""SLO tracker tests: percentile math, burn-rate accounting, state machine."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.service import SLOTracker, percentile


class TestPercentile:
    def test_empty_is_nan(self):
        assert math.isnan(percentile([], 99.0))

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            percentile([1.0], -1.0)
        with pytest.raises(ValueError):
            percentile([1.0], 100.5)

    def test_single_value(self):
        assert percentile([7.0], 0.0) == 7.0
        assert percentile([7.0], 50.0) == 7.0
        assert percentile([7.0], 100.0) == 7.0

    def test_nearest_rank_textbook(self):
        values = sorted([15.0, 20.0, 35.0, 40.0, 50.0])
        assert percentile(values, 30.0) == 20.0
        assert percentile(values, 40.0) == 20.0
        assert percentile(values, 50.0) == 35.0
        assert percentile(values, 100.0) == 50.0

    @given(
        st.lists(st.floats(0.0, 1e6), min_size=1, max_size=200),
        st.floats(0.0, 100.0),
    )
    def test_result_is_an_observed_value_within_bounds(self, values, q):
        values.sort()
        result = percentile(values, q)
        assert result in values
        assert values[0] <= result <= values[-1]

    @given(st.lists(st.floats(0.0, 1e6), min_size=1, max_size=100))
    def test_monotone_in_q(self, values):
        values.sort()
        results = [percentile(values, q) for q in (0, 25, 50, 75, 90, 99, 100)]
        assert results == sorted(results)


class TestBurnRate:
    def test_no_errors_no_burn(self):
        slo = SLOTracker()
        for i in range(100):
            slo.record(True, 0.001, float(i) * 0.01)
        assert slo.burn_rate == 0.0
        assert not slo.burning
        assert slo.ready

    def test_all_errors_burn_is_inverse_budget(self):
        slo = SLOTracker(availability_target=0.999, window=50)
        for i in range(50):
            slo.record(False, 0.001, float(i) * 0.01)
        # error fraction 1.0 over a 0.001 budget → burn rate 1000.
        assert slo.burn_rate == pytest.approx(1000.0)

    @given(
        st.lists(st.booleans(), min_size=1, max_size=300),
        st.floats(0.9, 0.9999),
    )
    @settings(max_examples=50)
    def test_burn_matches_window_error_fraction(self, outcomes, target):
        window = 64
        slo = SLOTracker(availability_target=target, window=window)
        for i, ok in enumerate(outcomes):
            slo.record(ok, 0.001, float(i) * 0.01)
        tail = outcomes[-window:]
        fraction = sum(1 for ok in tail if not ok) / len(tail)
        assert slo.burn_rate == pytest.approx(fraction / (1.0 - target))

    def test_window_eviction_forgets_old_errors(self):
        slo = SLOTracker(window=10)
        for i in range(10):
            slo.record(False, 0.001, float(i))
        assert slo.burn_rate > 0
        for i in range(10, 20):
            slo.record(True, 0.001, float(i))
        assert slo.burn_rate == 0.0


class TestStateMachine:
    def make(self, *, debounce=3):
        # budget 0.1, so one error in a full 10-wide window burns at 1.0;
        # all-errors burns at 10.0.
        return SLOTracker(
            availability_target=0.9,
            window=10,
            burn_threshold=2.0,
            burn_clear=1.0,
            debounce=debounce,
        )

    def test_debounce_delays_entry(self):
        slo = self.make(debounce=3)
        t = 0.0
        for _ in range(2):
            t += 1.0
            slo.record(False, 0.001, t)
            assert not slo.burning
        t += 1.0
        slo.record(False, 0.001, t)
        assert slo.burning
        assert not slo.ready

    def test_hysteresis_holds_between_clear_and_threshold(self):
        slo = self.make(debounce=1)
        t = 0.0
        for _ in range(4):
            t += 1.0
            slo.record(False, 0.001, t)
        assert slo.burning
        # Drop the burn into (clear, threshold): 2 errors in window of 10
        # is burn 2.0... push successes until burn is between 1 and 2.
        while slo.burn_rate >= 2.0:
            t += 1.0
            slo.record(True, 0.001, t)
        assert slo.burn_rate >= 1.0
        assert slo.burning  # hysteresis: not cleared until burn < burn_clear
        while slo.burn_rate >= 1.0:
            t += 1.0
            slo.record(True, 0.001, t)
        assert not slo.burning
        assert slo.ready

    @given(st.lists(st.booleans(), min_size=1, max_size=200))
    @settings(max_examples=50)
    def test_never_burning_below_clear_never_ready_while_burning(self, outcomes):
        slo = self.make(debounce=2)
        for i, ok in enumerate(outcomes):
            slo.record(ok, 0.001, float(i))
            if slo.burn_rate < 1.0:
                assert not slo.burning
            assert slo.ready == (not slo.burning)


class TestSnapshot:
    def test_fields_and_attainment(self):
        slo = SLOTracker(target_p99_ms=50.0, availability_target=0.999)
        for i in range(98):
            slo.record(True, 0.010, float(i))
        # Two slow requests out of 100 put 200ms at the nearest-rank p99.
        slo.record(True, 0.200, 98.0)
        slo.record(True, 0.200, 99.0)
        snap = slo.snapshot()
        assert snap["total_requests"] == 100
        assert snap["total_errors"] == 0
        assert snap["availability"] == 1.0
        assert snap["availability_met"] is True
        assert snap["p99_ms"] == pytest.approx(200.0)
        assert snap["p99_met"] is False
        assert snap["p50_ms"] == pytest.approx(10.0)

    def test_empty_snapshot_has_no_percentiles(self):
        snap = SLOTracker().snapshot()
        assert snap["p50_ms"] is None
        assert snap["p99_ms"] is None
        assert snap["availability"] == 1.0


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"target_p99_ms": 0.0},
            {"availability_target": 1.0},
            {"availability_target": 0.0},
            {"window": 0},
            {"burn_threshold": 0.0},
            {"burn_clear": 3.0, "burn_threshold": 2.0},
            {"debounce": 0},
        ],
    )
    def test_bad_params_rejected(self, kwargs):
        with pytest.raises(ValueError):
            SLOTracker(**kwargs)

    def test_out_of_order_timestamps_tolerated(self):
        slo = SLOTracker()
        slo.record(True, 0.001, 5.0)
        slo.record(True, 0.001, 4.0)  # clock skew must not raise
        assert slo.snapshot()["total_requests"] == 2


class TestFinalize:
    def test_open_burn_reported_at_exit(self):
        slo = SLOTracker(
            availability_target=0.9,
            window=8,
            burn_threshold=2.0,
            burn_clear=1.0,
            debounce=1,
        )
        for i in range(8):
            slo.record(False, 0.001, float(i) + 1.0)
        slo.evaluate_alarms()
        events = slo.finalize(9.0)
        assert [e.state for e in events] == ["open_at_exit"]
        assert events[0].rule == "slo-burn-rate"

    def test_healthy_tracker_has_nothing_open(self):
        slo = SLOTracker()
        for i in range(16):
            slo.record(True, 0.001, float(i) + 1.0)
        assert slo.finalize(17.0) == []
