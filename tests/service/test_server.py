"""Socket-level and process-level server tests: boot, probe, drain, exit codes."""

import json
import os
import signal
import subprocess
import sys
import threading
import time
from http.client import HTTPConnection
from pathlib import Path

import pytest

from repro.obs import parse_prometheus_text
from repro.service import PlannerApp, PlannerServer

EXAMPLE_PATH = Path(__file__).resolve().parents[2] / "examples" / "deployment.json"
SRC_DIR = str(Path(__file__).resolve().parents[2] / "src")


@pytest.fixture
def server():
    srv = PlannerServer(PlannerApp())
    srv.start()
    yield srv
    srv.close()


def _get(server, path, method="GET", body=None, headers=None):
    conn = HTTPConnection(server.host, server.port, timeout=10)
    try:
        conn.request(method, path, body=body, headers=headers or {})
        response = conn.getresponse()
        return response.status, dict(response.getheaders()), response.read()
    finally:
        conn.close()


class TestEndpoints:
    def test_healthz(self, server):
        status, _, body = _get(server, "/healthz")
        assert status == 200
        assert json.loads(body)["status"] == "ok"

    def test_metrics_round_trips(self, server):
        _get(server, "/healthz")
        status, headers, body = _get(server, "/metrics")
        assert status == 200
        assert headers["Content-Type"].startswith("text/plain; version=0.0.4")
        families = parse_prometheus_text(body.decode())
        assert "service_requests_total" in families

    def test_plan_over_the_wire(self, server):
        payload = EXAMPLE_PATH.read_bytes()
        status, headers, body = _get(
            server, "/plan", method="POST", body=payload,
            headers={"Content-Type": "application/json", "X-Request-Id": "wire-1"},
        )
        assert status == 200
        assert headers["X-Request-Id"] == "wire-1"
        assert json.loads(body)["consolidated_servers"] >= 1

    def test_keep_alive_reuses_the_connection(self, server):
        conn = HTTPConnection(server.host, server.port, timeout=10)
        try:
            for _ in range(3):
                conn.request("GET", "/healthz")
                response = conn.getresponse()
                assert response.status == 200
                response.read()
        finally:
            conn.close()

    def test_oversized_body_is_413(self, server):
        # The server rejects on Content-Length before reading the body, so a
        # high-level client would die on a broken pipe mid-upload; speak raw.
        import socket

        with socket.create_connection((server.host, server.port), timeout=10) as sock:
            sock.sendall(
                b"POST /plan HTTP/1.1\r\n"
                b"Host: test\r\n"
                b"Content-Length: 5242880\r\n"
                b"\r\n"
            )
            reply = sock.recv(4096).decode()
        assert reply.startswith("HTTP/1.1 413")


class TestDrain:
    def test_drain_waits_for_in_flight_request(self):
        app = PlannerApp()
        release = threading.Event()
        original = app._plan

        def slow_plan(body, request_id):
            release.wait(timeout=10)
            return original(body, request_id)

        app._plan = slow_plan
        srv = PlannerServer(app)
        srv.start()
        try:
            result = {}

            def fire():
                result["response"] = _get(
                    srv, "/plan", method="POST", body=EXAMPLE_PATH.read_bytes()
                )

            t = threading.Thread(target=fire)
            t.start()
            deadline = time.monotonic() + 5
            while app.in_flight == 0 and time.monotonic() < deadline:
                time.sleep(0.01)
            assert app.in_flight == 1

            drained = {}

            def drain():
                drained["clean"] = srv.drain(deadline_s=5.0)

            d = threading.Thread(target=drain)
            d.start()
            assert app.draining or not d.is_alive() or True  # drain in progress
            release.set()
            d.join(timeout=10)
            t.join(timeout=10)
            assert drained["clean"] is True
            assert result["response"][0] == 200
        finally:
            release.set()
            srv.close()

    def test_drain_deadline_expires_with_stuck_request(self):
        app = PlannerApp()
        stuck = threading.Event()

        def never_plan(body, request_id):
            stuck.wait(timeout=30)
            from repro.service.app import _json_response

            return _json_response(200, {})

        app._plan = never_plan
        srv = PlannerServer(app)
        srv.start()
        try:
            t = threading.Thread(
                target=lambda: _get(
                    srv, "/plan", method="POST", body=EXAMPLE_PATH.read_bytes()
                ),
                daemon=True,
            )
            t.start()
            deadline = time.monotonic() + 5
            while app.in_flight == 0 and time.monotonic() < deadline:
                time.sleep(0.01)
            assert srv.drain(deadline_s=0.3) is False
        finally:
            stuck.set()
            srv.close()


def _spawn(tmp_path, *extra):
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC_DIR
    return subprocess.Popen(
        [
            sys.executable, "-m", "repro.service",
            "--port", "0",
            "--port-file", str(tmp_path / "port"),
            "--access-log", str(tmp_path / "access.jsonl"),
            "--state-dir", str(tmp_path / "state"),
            *extra,
        ],
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
    )


def _wait_port(tmp_path, proc, deadline_s=15.0):
    port_file = tmp_path / "port"
    deadline = time.monotonic() + deadline_s
    while time.monotonic() < deadline:
        if port_file.exists() and port_file.read_text().strip():
            return int(port_file.read_text())
        if proc.poll() is not None:
            raise AssertionError(
                f"server exited early: {proc.returncode}\n{proc.stderr.read().decode()}"
            )
        time.sleep(0.05)
    raise AssertionError("port file never appeared")


class TestProcessLifecycle:
    def test_sigterm_drains_flushes_and_exits_zero(self, tmp_path):
        proc = _spawn(tmp_path)
        try:
            port = _wait_port(tmp_path, proc)
            conn = HTTPConnection("127.0.0.1", port, timeout=10)
            conn.request("POST", "/plan", body=EXAMPLE_PATH.read_bytes())
            assert conn.getresponse().read()
            conn.close()
            proc.send_signal(signal.SIGTERM)
            assert proc.wait(timeout=15) == 0
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait()
        stderr = proc.stderr.read().decode()
        assert "shutdown complete" in stderr
        # The access log was flushed and the manifest records a clean drain.
        lines = (tmp_path / "access.jsonl").read_text().splitlines()
        assert len(lines) >= 1
        manifest = json.loads((tmp_path / "state" / "run_manifest.json").read_text())
        assert manifest["service"]["drained"] is True
        assert manifest["service"]["requests_logged"] >= 1
        assert (tmp_path / "state" / "metrics.prom").exists()
        parse_prometheus_text((tmp_path / "state" / "metrics.prom").read_text())

    def test_bad_slo_params_exit_2_with_one_line_error(self, tmp_path):
        proc = _spawn(tmp_path, "--slo-availability", "1.5")
        out, err = proc.communicate(timeout=15)
        assert proc.returncode == 2
        message = err.decode().strip()
        assert message.startswith("error:")
        assert len(message.splitlines()) == 1

    def test_unopenable_access_log_exit_2(self, tmp_path):
        # A *file* where the parent directory should be makes the log
        # unopenable (missing directories are created automatically).
        (tmp_path / "blocker").write_text("")
        env = dict(os.environ)
        env["PYTHONPATH"] = SRC_DIR
        proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro.service",
                "--port", "0",
                "--access-log", str(tmp_path / "blocker" / "access.jsonl"),
            ],
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
        )
        out, err = proc.communicate(timeout=15)
        assert proc.returncode == 2
        assert err.decode().strip().startswith("error:")

    def test_occupied_port_exit_2(self, tmp_path):
        import socket

        holder = socket.socket()
        holder.bind(("127.0.0.1", 0))
        holder.listen(1)
        taken = holder.getsockname()[1]
        try:
            env = dict(os.environ)
            env["PYTHONPATH"] = SRC_DIR
            proc = subprocess.Popen(
                [sys.executable, "-m", "repro.service", "--port", str(taken)],
                env=env,
                stdout=subprocess.PIPE,
                stderr=subprocess.PIPE,
            )
            out, err = proc.communicate(timeout=15)
            assert proc.returncode == 2
            assert err.decode().strip().startswith("error:")
        finally:
            holder.close()
