"""Load-test client tests: deterministic mix, artifact shape, end-to-end run."""

import json

import pytest

from repro.cli import parse_deployment
from repro.obs.bench import validate_artifact
from repro.service import (
    LoadTestResult,
    MixGenerator,
    PlannerApp,
    PlannerServer,
    loadtest_artifact,
    run_loadtest,
)


class TestMixGenerator:
    def test_same_seed_same_bodies(self):
        first = MixGenerator(seed=2009, distinct=32)
        second = MixGenerator(seed=2009, distinct=32)
        assert [first.body(i) for i in range(32)] == [
            second.body(i) for i in range(32)
        ]

    def test_different_seed_differs(self):
        a = MixGenerator(seed=1, distinct=32)
        b = MixGenerator(seed=2, distinct=32)
        assert [a.body(i) for i in range(32)] != [b.body(i) for i in range(32)]

    def test_bodies_are_valid_deployments(self):
        gen = MixGenerator(seed=7, distinct=16)
        for i in range(len(gen)):
            doc = json.loads(gen.body(i))
            inputs, _targets, _planner = parse_deployment(doc)
            assert inputs.services

    def test_index_wraps_around(self):
        gen = MixGenerator(seed=3, distinct=4)
        assert gen.body(0) == gen.body(4)


class TestRunValidation:
    def test_needs_exactly_one_budget(self):
        with pytest.raises(ValueError):
            run_loadtest("127.0.0.1", 1, seed=1)
        with pytest.raises(ValueError):
            run_loadtest("127.0.0.1", 1, seed=1, duration_s=1.0, total_requests=10)


class TestEndToEnd:
    @pytest.fixture
    def server(self):
        srv = PlannerServer(PlannerApp())
        srv.start()
        yield srv
        srv.drain(deadline_s=5.0)
        srv.close()

    def test_request_budget_run(self, server):
        result = run_loadtest(
            server.host, server.port,
            seed=2009, workers=2, total_requests=40, distinct=8,
        )
        assert result.requests == 40
        assert result.errors == 0
        assert result.error_rate == 0.0
        assert result.throughput_rps > 0
        p = result.percentiles_ms()
        assert 0 < p["p50_ms"] <= p["p95_ms"] <= p["p99_ms"]

    def test_warmup_primes_every_distinct_body(self, server):
        run_loadtest(
            server.host, server.port,
            seed=11, workers=2, total_requests=8, distinct=8,
        )
        status = server.app.handle("GET", "/status")
        assert json.loads(status.body)["plan_cache"]["entries"] == 8

    def test_artifact_validates_and_carries_summary(self, server):
        result = run_loadtest(
            server.host, server.port,
            seed=2009, workers=2, total_requests=20, distinct=8,
        )
        artifact = loadtest_artifact(result)
        validate_artifact(artifact)
        assert artifact["loadtest"]["seed"] == 2009
        assert artifact["loadtest"]["requests"] == 20
        assert artifact["loadtest"]["throughput_rps"] == pytest.approx(
            result.throughput_rps, abs=0.05
        )
        (bench,) = artifact["benchmarks"]
        assert bench["name"] == "service::plan"
        assert bench["group"] == "service"
        assert len(bench["wall_s"]["repeats"]) == 20


class TestSummary:
    def test_summary_fields(self):
        result = LoadTestResult(
            url="http://127.0.0.1:9", seed=5, workers=2, distinct=4,
            duration_s=2.0, requests=10, errors=1,
            latencies_s=[0.001 * (i + 1) for i in range(10)],
        )
        summary = result.summary()
        assert summary["error_rate"] == pytest.approx(0.1)
        assert summary["throughput_rps"] == pytest.approx(5.0)
        assert summary["p50_ms"] == pytest.approx(5.0)
        assert summary["p99_ms"] == pytest.approx(10.0)
