"""Handler unit tests: PlannerApp driven by direct invocation, no sockets."""

import json
from pathlib import Path

import pytest

from repro.obs import PROMETHEUS_CONTENT_TYPE, parse_prometheus_text
from repro.service import AccessLog, PlannerApp, SLOTracker

EXAMPLE = json.loads(
    (Path(__file__).resolve().parents[2] / "examples" / "deployment.json").read_text()
)


def example_body(**overrides) -> bytes:
    doc = dict(EXAMPLE)
    doc.update(overrides)
    return json.dumps(doc, sort_keys=True).encode()


class FakeClock:
    def __init__(self):
        self.t = 100.0

    def __call__(self):
        return self.t


@pytest.fixture
def app():
    return PlannerApp(clock=FakeClock())


class TestPlan:
    def test_solves_the_example_deployment(self, app):
        response = app.handle("POST", "/plan", example_body())
        assert response.status == 200
        doc = json.loads(response.body)
        assert doc["consolidated_servers"] >= 1
        assert doc["dedicated_servers"] >= doc["consolidated_servers"]
        assert doc["load_model"] == "paper"
        # The db service declared a per-service loss target.
        assert "per_service_targets" in doc

    def test_identical_requests_are_byte_identical(self, app):
        body = example_body()
        first = app.handle("POST", "/plan", body)
        second = app.handle("POST", "/plan", body)
        assert first.body == second.body
        # And the second came from the response cache.
        families = parse_prometheus_text(
            app.handle("GET", "/metrics").body.decode()
        )
        hits = {
            labels["result"]: value
            for _, labels, value in families["service_plan_cache_total"]["samples"]
        }
        assert hits == {"hit": 1.0, "miss": 1.0}

    def test_load_model_offered_accepted(self, app):
        response = app.handle("POST", "/plan", example_body(load_model="offered"))
        assert response.status == 200
        assert json.loads(response.body)["load_model"] == "offered"

    def test_request_id_propagated(self, app):
        response = app.handle(
            "POST", "/plan", example_body(), {"X-Request-Id": "abc-123"}
        )
        assert ("X-Request-Id", "abc-123") in response.headers

    def test_request_id_generated_when_absent(self, app):
        response = app.handle("GET", "/healthz")
        ids = dict(response.headers)
        assert ids["X-Request-Id"].startswith("req-")


class TestMalformedRequests:
    def test_invalid_json_is_400_with_structured_body(self, app):
        response = app.handle("POST", "/plan", b"{not json", {"X-Request-Id": "r1"})
        assert response.status == 400
        doc = json.loads(response.body)
        assert doc["error"]["status"] == 400
        assert "JSON" in doc["error"]["message"]
        assert doc["request_id"] == "r1"

    def test_non_object_body_is_400(self, app):
        response = app.handle("POST", "/plan", b"[1, 2]")
        assert response.status == 400

    def test_missing_services_is_400(self, app):
        response = app.handle("POST", "/plan", b'{"loss_probability": 0.01}')
        assert response.status == 400
        assert "service" in json.loads(response.body)["error"]["message"]

    def test_bad_load_model_is_400(self, app):
        response = app.handle("POST", "/plan", example_body(load_model="wrong"))
        assert response.status == 400
        assert "load_model" in json.loads(response.body)["error"]["message"]

    def test_unknown_path_is_404(self, app):
        assert app.handle("GET", "/nope").status == 404

    def test_wrong_method_is_405(self, app):
        assert app.handle("GET", "/plan").status == 405
        assert app.handle("POST", "/healthz").status == 405


class TestMetrics:
    def test_content_type_and_round_trip(self, app):
        app.handle("POST", "/plan", example_body())
        response = app.handle("GET", "/metrics")
        assert response.content_type == PROMETHEUS_CONTENT_TYPE
        families = parse_prometheus_text(response.body.decode())
        assert families["service_requests_total"]["kind"] == "counter"
        assert families["service_request_seconds"]["kind"] == "histogram"
        assert families["service_uptime_seconds"]["kind"] == "gauge"
        assert families["slo_burn_rate"]["kind"] == "gauge"

    def test_request_counter_labelled_by_endpoint_and_status(self, app):
        app.handle("POST", "/plan", example_body())
        app.handle("POST", "/plan", b"broken")
        app.handle("GET", "/nowhere")
        families = parse_prometheus_text(app.handle("GET", "/metrics").body.decode())
        counted = {
            (labels["endpoint"], labels["status"]): value
            for _, labels, value in families["service_requests_total"]["samples"]
        }
        assert counted[("/plan", "200")] == 1.0
        assert counted[("/plan", "400")] == 1.0
        assert counted[("other", "404")] == 1.0

    def test_cache_counters_fold_once_across_scrapes(self, app):
        app.handle("POST", "/plan", example_body())
        app.handle("GET", "/metrics")
        families = parse_prometheus_text(app.handle("GET", "/metrics").body.decode())
        misses = [
            value
            for _, labels, value in families["erlang_cache_misses_total"]["samples"]
        ]
        # Deltas must not double-count when scraped repeatedly.
        total = sum(misses)
        again = parse_prometheus_text(app.handle("GET", "/metrics").body.decode())
        assert sum(
            value
            for _, labels, value in again["erlang_cache_misses_total"]["samples"]
        ) == total


class TestHealthAndStatus:
    def test_healthz_always_ok(self, app):
        assert app.handle("GET", "/healthz").status == 200

    def test_readyz_ok_when_not_burning(self, app):
        assert app.handle("GET", "/readyz").status == 200

    def test_readyz_503_while_draining(self, app):
        app.draining = True
        response = app.handle("GET", "/readyz")
        assert response.status == 503
        assert "drain" in json.loads(response.body)["error"]["message"]

    def test_readyz_503_when_slo_burning(self):
        clock = FakeClock()
        slo = SLOTracker(burn_threshold=2.0, debounce=1, window=8)
        app = PlannerApp(slo=slo, clock=clock)
        for i in range(8):
            slo.record(False, 0.001, float(i))
        response = app.handle("GET", "/readyz")
        assert response.status == 503
        assert "SLO" in json.loads(response.body)["error"]["message"]

    def test_status_snapshot_shape(self, app):
        app.handle("POST", "/plan", example_body())
        doc = json.loads(app.handle("GET", "/status").body)
        assert doc["status"] == "serving"
        assert doc["in_flight"] == 0
        assert doc["slo"]["total_requests"] == 1
        assert doc["plan_cache"]["entries"] == 1
        assert set(doc["alarms"]) == {
            "overload_fires", "underload_fires", "clears", "open_at_exit",
        }


class TestAccessLogIntegration:
    def test_every_request_logged(self, tmp_path):
        from repro.service import load_access_log

        log = AccessLog(tmp_path / "access.jsonl")
        app = PlannerApp(access_log=log, clock=FakeClock())
        app.handle("POST", "/plan", example_body(), {"X-Request-Id": "r-9"})
        app.handle("GET", "/healthz")
        app.handle("POST", "/plan", b"junk")
        app.finalize()
        log.close()
        requests, alarms = load_access_log(tmp_path / "access.jsonl")
        assert [r["status"] for r in requests] == [200, 200, 400]
        assert requests[0]["request_id"] == "r-9"
        assert requests[0]["endpoint"] == "/plan"
        assert all(r["latency_ms"] >= 0 for r in requests)

    def test_finalize_records_open_slo_alarm(self, tmp_path):
        from repro.service import load_access_log

        log = AccessLog(tmp_path / "access.jsonl")
        clock = FakeClock()
        slo = SLOTracker(burn_threshold=1.5, debounce=1, window=4)
        app = PlannerApp(slo=slo, access_log=log, clock=clock)
        # Burn the budget: repeated malformed requests are 400s (client
        # errors, SLO-ok) — drive the tracker directly instead.
        for i in range(6):
            slo.record(False, 0.001, float(i) + 1.0)
        open_events = app.finalize()
        log.close()
        assert [e.state for e in open_events] == ["open_at_exit"]
        _, alarms = load_access_log(tmp_path / "access.jsonl")
        states = [a["state"] for a in alarms]
        assert "fire" in states and "open_at_exit" in states


class TestTracing:
    def test_each_request_is_a_span_with_request_id(self, app):
        app.handle("POST", "/plan", example_body(), {"X-Request-Id": "t-1"})
        events = app.trace.events()
        begins = [e for e in events if e.kind == "span_begin"]
        ends = [e for e in events if e.kind == "span_end"]
        assert len(begins) == 1 and len(ends) == 1
        assert begins[0].name == "service_request"
        assert begins[0].fields["request_id"] == "t-1"
        assert ends[0].fields["status"] == 200
