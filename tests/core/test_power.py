"""Unit tests for the power model and fleet comparison (Eqs. 12–14)."""

import pytest

from repro.core.inputs import ModelInputs, ResourceKind, ServiceSpec
from repro.core.model import UtilityAnalyticModel
from repro.core.power import PowerComparison, ServerPowerModel, power_comparison

CPU = ResourceKind.CPU
DISK = ResourceKind.DISK_IO


def group2_solution():
    web = ServiceSpec(
        "web", 1200.0, {CPU: 3360.0, DISK: 1420.0}, {CPU: 0.65, DISK: 0.8}
    )
    db = ServiceSpec("db", 80.0, {CPU: 100.0}, {CPU: 0.9})
    return UtilityAnalyticModel(ModelInputs((web, db), 0.01)).solve()


class TestServerPowerModel:
    def test_linear_interpolation(self):
        pm = ServerPowerModel(200.0, 300.0)
        assert pm.draw(0.0) == 200.0
        assert pm.draw(1.0) == 300.0
        assert pm.draw(0.5) == 250.0

    def test_energy(self):
        pm = ServerPowerModel(200.0, 300.0)
        assert pm.energy(0.5, 10.0) == pytest.approx(2500.0)

    def test_busy_over_idle(self):
        pm = ServerPowerModel(250.0, 295.0)
        assert pm.busy_over_idle == pytest.approx(0.18)

    def test_default_matches_paper_17pct_observation(self):
        # Busy servers draw at most ~17-18% more than idle ones.
        assert ServerPowerModel().busy_over_idle <= 0.20

    def test_scaled(self):
        pm = ServerPowerModel(200.0, 300.0).scaled(0.5)
        assert pm.base_watts == 100.0
        assert pm.max_watts == 150.0

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            ServerPowerModel(-1.0, 10.0)
        with pytest.raises(ValueError):
            ServerPowerModel(100.0, 50.0)
        with pytest.raises(ValueError):
            ServerPowerModel().draw(1.5)
        with pytest.raises(ValueError):
            ServerPowerModel().energy(0.5, -1.0)
        with pytest.raises(ValueError):
            ServerPowerModel(100.0, 200.0).scaled(0.0)


class TestPowerComparison:
    def test_eq12_eq13_arithmetic(self):
        sol = group2_solution()
        pm = ServerPowerModel(100.0, 200.0)
        cmp_ = power_comparison(sol, power_model=pm, duration=10.0)
        # Idle part: count * base * t.
        assert cmp_.dedicated_idle_power == pytest.approx(8 * 100.0 * 10.0)
        assert cmp_.consolidated_idle_power == pytest.approx(4 * 100.0 * 10.0)
        # Dynamic part proportional to bottleneck utilization.
        assert cmp_.dedicated_power > cmp_.dedicated_idle_power
        assert cmp_.consolidated_power > cmp_.consolidated_idle_power

    def test_ratio_and_saving_consistent(self):
        cmp_ = power_comparison(group2_solution())
        assert cmp_.saving == pytest.approx(1.0 - 1.0 / cmp_.ratio)

    def test_halving_servers_saves_power(self):
        cmp_ = power_comparison(group2_solution())
        # Base power dominates, so ~50% fewer machines -> ~40-55% saving.
        assert 0.35 <= cmp_.saving <= 0.60

    def test_duration_cancels_in_ratio(self):
        sol = group2_solution()
        r1 = power_comparison(sol, duration=1.0).ratio
        r2 = power_comparison(sol, duration=3600.0).ratio
        assert r1 == pytest.approx(r2)

    def test_xen_platform_factors_increase_saving(self):
        sol = group2_solution()
        base = power_comparison(sol)
        xen = power_comparison(sol, xen_idle_factor=0.91, xen_workload_factor=0.70)
        assert xen.saving > base.saving

    def test_paper_53pct_with_platform_effects(self):
        cmp_ = power_comparison(
            group2_solution(), xen_idle_factor=0.91, xen_workload_factor=0.70
        )
        assert cmp_.saving == pytest.approx(0.53, abs=0.04)

    def test_workload_power_positive(self):
        cmp_ = power_comparison(group2_solution())
        assert cmp_.dedicated_workload_power > 0.0
        assert cmp_.consolidated_workload_power > 0.0

    def test_rejects_bad_factors(self):
        with pytest.raises(ValueError):
            power_comparison(group2_solution(), xen_idle_factor=0.0)
        with pytest.raises(ValueError):
            power_comparison(group2_solution(), duration=-1.0)

    def test_zero_consolidated_power_ratio(self):
        cmp_ = PowerComparison(
            dedicated_power=10.0,
            consolidated_power=0.0,
            dedicated_idle_power=5.0,
            consolidated_idle_power=0.0,
            duration=1.0,
        )
        assert cmp_.ratio == float("inf")
