"""Unit tests for ServiceSpec / ModelInputs validation and derived loads."""

import math

import pytest

from repro.core.inputs import UNLIMITED_RATE, ModelInputs, ResourceKind, ServiceSpec

CPU = ResourceKind.CPU
DISK = ResourceKind.DISK_IO


def make_web(rate=1200.0):
    return ServiceSpec(
        "web",
        rate,
        {CPU: 3360.0, DISK: 1420.0},
        {CPU: 0.65, DISK: 0.8},
    )


def make_db(rate=80.0):
    return ServiceSpec("db", rate, {CPU: 100.0}, {CPU: 0.9})


class TestServiceSpec:
    def test_offered_load_eq3(self):
        web = make_web(1200.0)
        assert web.offered_load(DISK) == pytest.approx(1200.0 / 1420.0)
        assert web.offered_load(CPU) == pytest.approx(1200.0 / 3360.0)

    def test_untouched_resource_has_zero_load(self):
        db = make_db()
        assert db.mu(DISK) == UNLIMITED_RATE
        assert db.offered_load(DISK) == 0.0

    def test_effective_mu_applies_impact(self):
        web = make_web()
        assert web.effective_mu(CPU) == pytest.approx(3360.0 * 0.65)
        assert web.effective_mu(DISK) == pytest.approx(1420.0 * 0.8)

    def test_effective_mu_infinite_stays_infinite(self):
        assert math.isinf(make_db().effective_mu(DISK))

    def test_default_impact_is_one(self):
        s = ServiceSpec("s", 1.0, {CPU: 10.0})
        assert s.impact(CPU) == 1.0
        assert s.effective_mu(CPU) == 10.0

    def test_with_arrival_rate(self):
        s = make_web().with_arrival_rate(50.0)
        assert s.arrival_rate == 50.0
        assert s.name == "web"
        assert s.impact(CPU) == 0.65

    def test_without_virtualization_overhead(self):
        s = make_web().without_virtualization_overhead()
        assert s.impact(CPU) == 1.0
        assert s.impact(DISK) == 1.0

    def test_rejects_empty_name(self):
        with pytest.raises(ValueError):
            ServiceSpec("", 1.0, {CPU: 1.0})

    def test_rejects_negative_arrival(self):
        with pytest.raises(ValueError):
            ServiceSpec("s", -1.0, {CPU: 1.0})

    def test_rejects_no_resources(self):
        with pytest.raises(ValueError):
            ServiceSpec("s", 1.0, {})

    def test_rejects_nonpositive_mu(self):
        with pytest.raises(ValueError):
            ServiceSpec("s", 1.0, {CPU: 0.0})

    def test_rejects_out_of_range_impact(self):
        with pytest.raises(ValueError):
            ServiceSpec("s", 1.0, {CPU: 1.0}, {CPU: 0.0})
        with pytest.raises(ValueError):
            ServiceSpec("s", 1.0, {CPU: 1.0}, {CPU: 100.0})

    def test_allows_impact_above_one(self):
        # The DB service's multi-VM speedup: a > 1 is legal.
        s = ServiceSpec("db", 1.0, {CPU: 100.0}, {CPU: 1.85})
        assert s.effective_mu(CPU) == pytest.approx(185.0)

    def test_rejects_impact_for_missing_resource(self):
        with pytest.raises(ValueError):
            ServiceSpec("s", 1.0, {CPU: 1.0}, {DISK: 0.5})

    def test_rejects_non_resource_keys(self):
        with pytest.raises(TypeError):
            ServiceSpec("s", 1.0, {"cpu": 1.0})


class TestModelInputs:
    def test_total_arrival_rate(self):
        inputs = ModelInputs((make_web(1200.0), make_db(80.0)), 0.01)
        assert inputs.total_arrival_rate == pytest.approx(1280.0)

    def test_resources_union_in_stable_order(self):
        inputs = ModelInputs((make_web(), make_db()), 0.01)
        assert inputs.resources == (CPU, DISK)

    def test_rejects_duplicate_names(self):
        with pytest.raises(ValueError):
            ModelInputs((make_web(), make_web()), 0.01)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            ModelInputs((), 0.01)

    def test_rejects_bad_loss_probability(self):
        with pytest.raises(ValueError):
            ModelInputs((make_web(),), 0.0)
        with pytest.raises(ValueError):
            ModelInputs((make_web(),), 1.0)

    def test_service_lookup(self):
        inputs = ModelInputs((make_web(), make_db()), 0.01)
        assert inputs.service("db").name == "db"
        with pytest.raises(KeyError):
            inputs.service("missing")

    def test_scaled_workloads(self):
        inputs = ModelInputs((make_web(100.0), make_db(10.0)), 0.01)
        scaled = inputs.scaled_workloads(2.0)
        assert scaled.service("web").arrival_rate == 200.0
        assert scaled.service("db").arrival_rate == 20.0


class TestConsolidatedLoad:
    """The Eq. 4/5 mixture — both the paper-literal and offered readings."""

    def test_paper_mode_matches_eq5(self):
        # rho'_c = lambda^2 / sum(lambda_i mu_ic a_ic)  (both touch CPU).
        inputs = ModelInputs((make_web(1200.0), make_db(80.0)), 0.01)
        lam = 1280.0
        denom = 1200.0 * 3360.0 * 0.65 + 80.0 * 100.0 * 0.9
        assert inputs.consolidated_load(CPU, "paper") == pytest.approx(
            lam * lam / denom
        )

    def test_paper_mode_infinite_rate_erases_constraint(self):
        # The paper's mu_di ~ inf: DB's infinite disk rate dominates the
        # arithmetic mixture, so disk imposes no constraint at all.
        inputs = ModelInputs((make_web(1200.0), make_db(80.0)), 0.01)
        assert inputs.consolidated_load(DISK, "paper") == 0.0

    def test_offered_mode_is_sum_of_virtualized_loads(self):
        inputs = ModelInputs((make_web(1200.0), make_db(80.0)), 0.01)
        expected_cpu = 1200.0 / (3360.0 * 0.65) + 80.0 / (100.0 * 0.9)
        expected_disk = 1200.0 / (1420.0 * 0.8)
        assert inputs.consolidated_load(CPU, "offered") == pytest.approx(expected_cpu)
        assert inputs.consolidated_load(DISK, "offered") == pytest.approx(
            expected_disk
        )

    def test_offered_never_below_paper(self):
        # AM >= HM: the paper's mixture rate is optimistic, i.e. its load
        # is never above the offered load.
        inputs = ModelInputs((make_web(1200.0), make_db(80.0)), 0.01)
        for res in (CPU, DISK):
            assert inputs.consolidated_load(res, "paper") <= inputs.consolidated_load(
                res, "offered"
            ) + 1e-12

    def test_modes_agree_for_identical_services(self):
        # With equal mu*a everywhere AM == HM.
        a = ServiceSpec("a", 10.0, {CPU: 100.0})
        b = ServiceSpec("b", 30.0, {CPU: 100.0})
        inputs = ModelInputs((a, b), 0.01)
        assert inputs.consolidated_load(CPU, "paper") == pytest.approx(
            inputs.consolidated_load(CPU, "offered")
        )
        assert inputs.consolidated_load(CPU, "paper") == pytest.approx(0.4)

    def test_zero_traffic_service_is_ignored(self):
        # A zero-rate service must not erase constraints via its inf rates.
        idle_db = make_db(0.0)
        inputs = ModelInputs((make_web(1200.0), idle_db), 0.01)
        assert inputs.consolidated_load(DISK, "paper") > 0.0

    def test_unknown_mode_rejected(self):
        inputs = ModelInputs((make_web(),), 0.01)
        with pytest.raises(ValueError):
            inputs.consolidated_load(CPU, "bogus")

    def test_without_virtualization_overhead(self):
        inputs = ModelInputs((make_web(1200.0), make_db(80.0)), 0.01)
        ideal = inputs.without_virtualization_overhead()
        expected = 1280.0**2 / (1200.0 * 3360.0 + 80.0 * 100.0)
        assert ideal.consolidated_load(CPU, "paper") == pytest.approx(expected)
