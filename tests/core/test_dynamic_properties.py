"""Property-based tests for the dynamic capacity planner."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.dynamic import DynamicCapacityPlanner
from repro.core.inputs import ResourceKind, ServiceSpec

CPU = ResourceKind.CPU

rates = st.floats(min_value=0.1, max_value=500.0, allow_nan=False)
profiles = st.lists(
    st.fixed_dictionaries({"svc": rates}), min_size=1, max_size=24
)


def make_planner(hold_periods=0, boot_energy=0.0):
    return DynamicCapacityPlanner(
        services=[ServiceSpec("svc", 1.0, {CPU: 100.0}, {CPU: 0.8})],
        loss_probability=0.01,
        hold_periods=hold_periods,
        boot_energy=boot_energy,
    )


@settings(max_examples=40, deadline=None)
@given(profiles)
def test_qos_never_sacrificed(profile):
    plan = make_planner(hold_periods=2).plan(profile)
    for p in plan.periods:
        assert p.servers_on >= p.servers_needed


@settings(max_examples=40, deadline=None)
@given(profiles)
def test_on_count_bookkeeping_consistent(profile):
    plan = make_planner().plan(profile)
    on = plan.periods[0].servers_needed
    for p in plan.periods:
        on = on + p.booted - p.shut_down
        assert on == p.servers_on
        assert 0.0 <= p.utilization <= 1.0


@settings(max_examples=40, deadline=None)
@given(profiles)
def test_dynamic_never_exceeds_static_energy_when_boot_free(profile):
    plan = make_planner(boot_energy=0.0).plan(profile)
    assert plan.total_energy <= plan.static_energy + 1e-6


@settings(max_examples=40, deadline=None)
@given(profiles, st.integers(min_value=0, max_value=5))
def test_hysteresis_monotone_in_energy(profile, hold):
    eager = make_planner(hold_periods=0).plan(profile)
    lazy = make_planner(hold_periods=hold).plan(profile)
    assert lazy.total_energy >= eager.total_energy - 1e-6


@settings(max_examples=40, deadline=None)
@given(profiles)
def test_peak_servers_is_max_needed(profile):
    plan = make_planner().plan(profile)
    assert plan.peak_servers == max(p.servers_needed for p in plan.periods)
