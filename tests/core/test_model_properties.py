"""Property-based tests for the utility analytic model."""

import math

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core.inputs import ModelInputs, ResourceKind, ServiceSpec
from repro.core.model import UtilityAnalyticModel
from repro.queueing.erlang import erlang_b

CPU = ResourceKind.CPU
DISK = ResourceKind.DISK_IO

rates = st.floats(min_value=0.1, max_value=5000.0, allow_nan=False)
mus = st.floats(min_value=1.0, max_value=10_000.0, allow_nan=False)
impacts = st.floats(min_value=0.1, max_value=2.0, allow_nan=False)
targets = st.floats(min_value=1e-4, max_value=0.2)


@st.composite
def service_specs(draw, name="svc"):
    lam = draw(rates)
    mu_cpu = draw(mus)
    a_cpu = draw(impacts)
    has_disk = draw(st.booleans())
    service_rates = {CPU: mu_cpu}
    impacts_map = {CPU: a_cpu}
    if has_disk:
        service_rates[DISK] = draw(mus)
        impacts_map[DISK] = draw(impacts)
    return ServiceSpec(name, lam, service_rates, impacts_map)


@st.composite
def model_inputs(draw, max_services=4):
    n = draw(st.integers(min_value=1, max_value=max_services))
    services = tuple(draw(service_specs(name=f"svc{i}")) for i in range(n))
    return ModelInputs(services, draw(targets))


@settings(max_examples=60, deadline=None)
@given(model_inputs())
def test_solution_meets_loss_target_everywhere(inputs):
    sol = UtilityAnalyticModel(inputs).solve()
    b = inputs.loss_probability
    for sizing in sol.dedicated:
        for blocking in sizing.achieved_blocking().values():
            assert blocking <= b + 1e-12
    n = sol.consolidated_servers
    for rho in sol.consolidated_load.values():
        assert erlang_b(n, rho) <= b + 1e-12


@settings(max_examples=60, deadline=None)
@given(model_inputs())
def test_sizings_are_minimal(inputs):
    sol = UtilityAnalyticModel(inputs).solve()
    b = inputs.loss_probability
    # One fewer consolidated server must violate the target on some resource
    # (unless N is 0, meaning no load at all).
    n = sol.consolidated_servers
    if n > 0:
        assert any(erlang_b(n - 1, rho) > b for rho in sol.consolidated_load.values())


@settings(max_examples=60, deadline=None)
@given(model_inputs(), st.floats(min_value=1.1, max_value=3.0))
def test_more_workload_never_fewer_servers(inputs, factor):
    sol1 = UtilityAnalyticModel(inputs).solve()
    sol2 = UtilityAnalyticModel(inputs.scaled_workloads(factor)).solve()
    assert sol2.dedicated_servers >= sol1.dedicated_servers
    assert sol2.consolidated_servers >= sol1.consolidated_servers


@settings(max_examples=60, deadline=None)
@given(model_inputs())
def test_offered_mode_dominates_paper_mode(inputs):
    paper = UtilityAnalyticModel(inputs, load_model="paper").solve()
    offered = UtilityAnalyticModel(inputs, load_model="offered").solve()
    assert offered.consolidated_servers >= paper.consolidated_servers


@settings(max_examples=60, deadline=None)
@given(model_inputs())
def test_ideal_virtualization_with_offered_load_never_exceeds_m(inputs):
    # With a = 1 and the conservative offered load, pooling cannot need more
    # machines than dedication: the consolidated offered load on each
    # resource is exactly the sum of island loads, and Erlang-B server
    # counts are subadditive under load pooling.
    ideal = inputs.without_virtualization_overhead()
    sol = UtilityAnalyticModel(ideal, load_model="offered").solve()
    assert sol.consolidated_servers <= sol.dedicated_servers


@settings(max_examples=40, deadline=None)
@given(service_specs(), targets)
def test_single_service_ideal_consolidation_identity(spec, b):
    ideal = spec.without_virtualization_overhead()
    inputs = ModelInputs((ideal,), b)
    sol = UtilityAnalyticModel(inputs, load_model="offered").solve()
    assert sol.consolidated_servers == sol.dedicated_servers


@settings(max_examples=40, deadline=None)
@given(model_inputs(), st.floats(min_value=0.1, max_value=0.9))
def test_stricter_target_needs_no_fewer_servers(inputs, shrink):
    stricter = inputs.with_loss_probability(inputs.loss_probability * shrink)
    sol1 = UtilityAnalyticModel(inputs).solve()
    sol2 = UtilityAnalyticModel(stricter).solve()
    assert sol2.dedicated_servers >= sol1.dedicated_servers
    assert sol2.consolidated_servers >= sol1.consolidated_servers
