"""Unit tests for the utility analytic model (Fig. 4 algorithm)."""

import pytest

from repro.core.inputs import ModelInputs, ResourceKind, ServiceSpec
from repro.core.model import UtilityAnalyticModel
from repro.queueing.erlang import erlang_b, min_servers

CPU = ResourceKind.CPU
DISK = ResourceKind.DISK_IO


def web(rate=1200.0):
    return ServiceSpec("web", rate, {CPU: 3360.0, DISK: 1420.0}, {CPU: 0.65, DISK: 0.8})


def db(rate=80.0):
    return ServiceSpec("db", rate, {CPU: 100.0}, {CPU: 0.9})


def solve(rates=(1200.0, 80.0), b=0.01, load_model="paper"):
    inputs = ModelInputs((web(rates[0]), db(rates[1])), b)
    return UtilityAnalyticModel(inputs, load_model=load_model).solve()


class TestDedicatedSizing:
    def test_per_resource_inversion(self):
        sol = solve()
        sizing = sol.dedicated_for("web")
        assert sizing.per_resource_servers[DISK] == min_servers(1200.0 / 1420.0, 0.01)
        assert sizing.per_resource_servers[CPU] == min_servers(1200.0 / 3360.0, 0.01)

    def test_bottleneck_is_max_resource(self):
        sizing = solve().dedicated_for("web")
        assert sizing.bottleneck == DISK
        assert sizing.servers == sizing.per_resource_servers[DISK]

    def test_m_is_sum_of_islands(self):
        sol = solve()
        assert sol.dedicated_servers == sum(d.servers for d in sol.dedicated)

    def test_achieved_blocking_meets_target(self):
        for sizing in solve().dedicated:
            for blocking in sizing.achieved_blocking().values():
                assert blocking <= 0.01

    def test_unknown_service_raises(self):
        with pytest.raises(KeyError):
            solve().dedicated_for("nope")


class TestConsolidatedSizing:
    def test_n_is_max_over_resources(self):
        sol = solve()
        assert sol.consolidated_servers == max(
            sol.consolidated_per_resource_servers.values()
        )

    def test_consolidated_blocking_meets_target(self):
        sol = solve()
        for rho in sol.consolidated_load.values():
            assert erlang_b(sol.consolidated_servers, rho) <= 0.01

    def test_case_study_group1(self):
        sol = solve((600.0, 40.0))
        assert sol.dedicated_servers == 6
        assert sol.consolidated_servers == 3

    def test_case_study_group2(self):
        sol = solve((1200.0, 80.0))
        assert sol.dedicated_servers == 8
        assert sol.consolidated_servers == 4

    def test_savings_accessors(self):
        sol = solve((1200.0, 80.0))
        assert sol.servers_saved == 4
        assert sol.infrastructure_saving == pytest.approx(0.5)

    def test_offered_mode_needs_more_servers(self):
        # Conservative load model can only increase N.
        assert (
            solve(load_model="offered").consolidated_servers
            >= solve(load_model="paper").consolidated_servers
        )

    def test_consolidated_bottleneck_is_cpu(self):
        assert solve().consolidated_bottleneck == CPU

    def test_rejects_unknown_load_model(self):
        inputs = ModelInputs((web(),), 0.01)
        with pytest.raises(ValueError):
            UtilityAnalyticModel(inputs, load_model="nope")


class TestSingleServiceIdentity:
    def test_single_service_a1_consolidation_is_noop(self):
        # One service, no virtualization overhead: pooling changes nothing,
        # so N equals that service's dedicated island.
        s = ServiceSpec("solo", 700.0, {CPU: 100.0})
        sol = UtilityAnalyticModel(ModelInputs((s,), 0.01)).solve()
        assert sol.consolidated_servers == sol.dedicated_servers

    def test_single_service_with_overhead_needs_more(self):
        s = ServiceSpec("solo", 700.0, {CPU: 100.0}, {CPU: 0.5})
        sol = UtilityAnalyticModel(ModelInputs((s,), 0.01)).solve()
        assert sol.consolidated_servers >= sol.dedicated_servers


class TestBlockingWithServers:
    def test_consolidated_matches_erlang(self):
        inputs = ModelInputs((web(), db()), 0.01)
        model = UtilityAnalyticModel(inputs)
        loads = model.consolidated_loads()
        expected = max(erlang_b(4, rho) for rho in loads.values())
        assert model.blocking_with_servers(4) == pytest.approx(expected)

    def test_dedicated_uses_worst_island(self):
        inputs = ModelInputs((web(), db()), 0.01)
        model = UtilityAnalyticModel(inputs)
        worst = model.blocking_with_servers(2, consolidated=False)
        assert worst == pytest.approx(
            max(
                erlang_b(2, 1200.0 / 1420.0),
                erlang_b(2, 1200.0 / 3360.0),
                erlang_b(2, 80.0 / 100.0),
            )
        )

    def test_more_servers_less_blocking(self):
        model = UtilityAnalyticModel(ModelInputs((web(), db()), 0.01))
        assert model.blocking_with_servers(8) <= model.blocking_with_servers(2)

    def test_rejects_negative(self):
        model = UtilityAnalyticModel(ModelInputs((web(),), 0.01))
        with pytest.raises(ValueError):
            model.blocking_with_servers(-1)


class TestSummaryRows:
    def test_structure(self):
        rows = solve().summary_rows()
        assert rows[-1]["scenario"] == "consolidated"
        assert rows[-2]["service"] == "TOTAL (M)"
        assert rows[-2]["servers"] == 8
        assert rows[-1]["servers"] == 4
        assert {r["scenario"] for r in rows} == {"dedicated", "consolidated"}
