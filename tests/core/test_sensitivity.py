"""Unit tests for the sensitivity (tornado) analysis."""

import pytest

from repro.core.inputs import ModelInputs, ResourceKind, ServiceSpec
from repro.core.sensitivity import sensitivity_report

CPU = ResourceKind.CPU
DISK = ResourceKind.DISK_IO


def inputs():
    web = ServiceSpec(
        "web", 1200.0, {CPU: 3360.0, DISK: 1420.0}, {CPU: 0.65, DISK: 0.8}
    )
    db = ServiceSpec("db", 80.0, {CPU: 100.0}, {CPU: 0.9})
    return ModelInputs((web, db), 0.01)


@pytest.fixture(scope="module")
def report():
    return sensitivity_report(inputs(), delta=0.3)


class TestReportStructure:
    def test_baseline_matches_model(self, report):
        assert report.baseline_n == 4

    def test_all_parameters_present(self, report):
        names = {e.parameter for e in report.entries}
        assert "lambda[web]" in names
        assert "lambda[db]" in names
        assert "mu[web,cpu]" in names
        assert "mu[web,disk_io]" in names
        assert "mu[db,cpu]" in names
        assert "a[web,cpu]" in names
        assert "a[db,cpu]" in names
        assert "B" in names

    def test_sorted_by_swing(self, report):
        swings = [e.swing for e in report.entries]
        assert swings == sorted(swings, reverse=True)

    def test_rows_render(self, report):
        rows = report.rows()
        assert len(rows) == len(report.entries)
        assert {"parameter", "N_minus", "N_plus", "swing"} <= set(rows[0])

    def test_lookup(self, report):
        assert report.entry("B").parameter == "B"
        with pytest.raises(KeyError):
            report.entry("nope")


class TestDirections:
    def test_more_db_traffic_needs_more_servers(self, report):
        entry = report.entry("lambda[db]")
        assert entry.n_high >= entry.n_low
        assert entry.direction in ("increases", "none")

    def test_faster_db_cpu_needs_fewer(self, report):
        entry = report.entry("mu[db,cpu]")
        assert entry.n_high <= entry.n_low

    def test_better_impact_factor_never_hurts(self, report):
        entry = report.entry("a[db,cpu]")
        assert entry.n_high <= entry.n_low

    def test_tighter_loss_target_needs_more(self, report):
        entry = report.entry("B")
        # n_low is B*(1-delta): tighter target -> more servers.
        assert entry.n_low >= entry.n_high

    def test_paper_mode_quirk_web_rate_dominates(self, report):
        # A consequence of Eq. 4's arithmetic weighting: the FAST service's
        # rate terms dominate the mixture, so web CPU parameters swing N
        # while the db parameters (the physically binding demand!) do not.
        assert report.entry("mu[web,cpu]").swing >= 1
        assert report.entry("mu[db,cpu]").swing == 0

    def test_offered_mode_sees_db_demand(self):
        # The offered-load reading restores physical intuition: db's CPU
        # parameters move N as much as web's.
        offered = sensitivity_report(inputs(), delta=0.3, load_model="offered")
        assert offered.entry("mu[db,cpu]").swing >= 1
        assert offered.entry("lambda[db]").swing >= 1


class TestRobustness:
    def test_small_delta_mostly_robust(self):
        small = sensitivity_report(inputs(), delta=0.01)
        # 1% measurement error moves the integral N for almost nothing.
        assert len(small.robust_parameters) >= len(small.entries) - 2

    def test_validation(self):
        with pytest.raises(ValueError):
            sensitivity_report(inputs(), delta=0.0)
        with pytest.raises(ValueError):
            sensitivity_report(inputs(), delta=1.0)
