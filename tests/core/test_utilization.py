"""Unit tests for the utilization analysis (Eqs. 8–11)."""

import math

import pytest

from repro.core.inputs import ModelInputs, ResourceKind, ServiceSpec
from repro.core.model import UtilityAnalyticModel
from repro.core.utilization import utilization_report

CPU = ResourceKind.CPU
DISK = ResourceKind.DISK_IO


def group2_solution():
    web = ServiceSpec(
        "web", 1200.0, {CPU: 3360.0, DISK: 1420.0}, {CPU: 0.65, DISK: 0.8}
    )
    db = ServiceSpec("db", 80.0, {CPU: 100.0}, {CPU: 0.9})
    return UtilityAnalyticModel(ModelInputs((web, db), 0.01)).solve()


class TestUtilizationReport:
    def test_dedicated_cpu_value(self):
        report = utilization_report(group2_solution())
        # (1200/3360 + 80/100) / 8 machines.
        expected = (1200.0 / 3360.0 + 80.0 / 100.0) / 8.0
        assert report.resource(CPU).dedicated == pytest.approx(expected)

    def test_consolidated_cpu_value(self):
        report = utilization_report(group2_solution())
        # Offered virtualized load over the N=4 pool.
        expected = (1200.0 / (3360.0 * 0.65) + 80.0 / (100.0 * 0.9)) / 4.0
        assert report.resource(CPU).consolidated == pytest.approx(expected)

    def test_consolidation_improves_utilization(self):
        report = utilization_report(group2_solution())
        for entry in report.per_resource:
            assert entry.improvement >= 1.0

    def test_bottleneck_improvement_is_cpu(self):
        report = utilization_report(group2_solution())
        assert report.bottleneck_improvement == pytest.approx(
            report.resource(CPU).improvement
        )

    def test_improvement_exceeds_server_ratio(self):
        # Consolidation halves the fleet AND adds virtualization work, so
        # the utilization ratio must exceed M/N = 2.
        report = utilization_report(group2_solution())
        assert report.resource(CPU).improvement > 2.0

    def test_paper_band(self):
        # Direction + magnitude: well above the paper's model (1.5x) since
        # our utilization accounts for virtualization busy time; must stay
        # in a sane band.
        report = utilization_report(group2_solution())
        assert 1.5 <= report.resource(CPU).improvement <= 4.0

    def test_mean_improvement_finite(self):
        report = utilization_report(group2_solution())
        assert math.isfinite(report.mean_improvement)
        assert report.mean_improvement >= 1.0

    def test_unknown_resource_raises(self):
        report = utilization_report(group2_solution())
        with pytest.raises(KeyError):
            report.resource(ResourceKind.NETWORK)

    def test_server_counts_recorded(self):
        report = utilization_report(group2_solution())
        assert report.dedicated_servers == 8
        assert report.consolidated_servers == 4


class TestImprovementEdgeCases:
    def test_untouched_resource_improvement(self):
        # A resource only one tiny service uses: dedicated util > 0, so the
        # ratio is finite; a resource nobody uses never appears.
        s1 = ServiceSpec("a", 10.0, {CPU: 100.0})
        s2 = ServiceSpec("b", 10.0, {CPU: 100.0, DISK: 100.0})
        sol = UtilityAnalyticModel(ModelInputs((s1, s2), 0.01)).solve()
        report = utilization_report(sol)
        assert math.isfinite(report.resource(DISK).improvement)

    def test_symmetric_services_improvement_is_server_ratio(self):
        # No virtualization overhead, identical services: utilization gain
        # equals exactly M/N.
        a = ServiceSpec("a", 50.0, {CPU: 100.0})
        b = ServiceSpec("b", 50.0, {CPU: 100.0})
        sol = UtilityAnalyticModel(ModelInputs((a, b), 0.01)).solve()
        report = utilization_report(sol)
        expected = sol.dedicated_servers / sol.consolidated_servers
        assert report.resource(CPU).improvement == pytest.approx(expected)
