"""Unit tests for the multi-period dynamic capacity planner."""

import pytest

from repro.core.dynamic import DynamicCapacityPlanner
from repro.core.inputs import ResourceKind, ServiceSpec
from repro.core.power import ServerPowerModel

CPU = ResourceKind.CPU


def services():
    return [
        ServiceSpec("web", 1.0, {CPU: 100.0}, {CPU: 0.8}),
        ServiceSpec("db", 1.0, {CPU: 50.0}, {CPU: 0.9}),
    ]


def planner(**kw):
    defaults = dict(
        services=services(),
        loss_probability=0.01,
        power_model=ServerPowerModel(100.0, 150.0),
        period_length=3600.0,
        hold_periods=0,
        boot_energy=0.0,
    )
    defaults.update(kw)
    return DynamicCapacityPlanner(**defaults)


DAY = [
    {"web": 50.0, "db": 10.0},   # night
    {"web": 50.0, "db": 10.0},
    {"web": 400.0, "db": 60.0},  # morning ramp
    {"web": 800.0, "db": 120.0}, # peak
    {"web": 800.0, "db": 120.0},
    {"web": 200.0, "db": 30.0},  # evening
]


class TestServersNeeded:
    def test_monotone_in_load(self):
        p = planner()
        low = p.servers_needed({"web": 50.0, "db": 10.0})
        high = p.servers_needed({"web": 800.0, "db": 120.0})
        assert high > low

    def test_min_servers_floor(self):
        p = planner(min_servers=3)
        assert p.servers_needed({"web": 0.1, "db": 0.1}) == 3

    def test_missing_service_raises(self):
        with pytest.raises(KeyError):
            planner().servers_needed({"web": 1.0})

    def test_offered_mode_needs_at_least_paper(self):
        rates = {"web": 800.0, "db": 120.0}
        assert planner(load_model="offered").servers_needed(
            rates
        ) >= planner().servers_needed(rates)


class TestPlan:
    def test_follows_demand(self):
        plan = planner().plan(DAY)
        ons = [p.servers_on for p in plan.periods]
        needs = [p.servers_needed for p in plan.periods]
        assert ons == needs  # no hysteresis, zero boot cost
        assert plan.peak_servers == max(needs)

    def test_energy_saving_positive(self):
        plan = planner().plan(DAY)
        assert plan.energy_saving > 0.0
        assert plan.total_energy < plan.static_energy

    def test_qos_never_sacrificed(self):
        # Powered-on servers never fall below the period's requirement.
        plan = planner(hold_periods=2).plan(DAY)
        for p in plan.periods:
            assert p.servers_on >= p.servers_needed

    def test_hysteresis_delays_shrinking(self):
        eager = planner(hold_periods=0).plan(DAY)
        lazy = planner(hold_periods=2).plan(DAY)
        assert lazy.mean_servers_on >= eager.mean_servers_on
        assert lazy.total_energy >= eager.total_energy

    def test_boot_energy_charged(self):
        free = planner(boot_energy=0.0).plan(DAY)
        costly = planner(boot_energy=1e6).plan(DAY)
        assert costly.boot_energy_spent > 0.0
        assert costly.total_energy > free.total_energy

    def test_utilization_bounded(self):
        plan = planner().plan(DAY)
        for p in plan.periods:
            assert 0.0 <= p.utilization <= 1.0

    def test_booted_and_shutdown_bookkeeping(self):
        plan = planner().plan(DAY)
        on = plan.periods[0].servers_needed
        for p in plan.periods:
            on = on + p.booted - p.shut_down
            assert on == p.servers_on

    def test_rows_render(self):
        rows = planner().plan(DAY).rows()
        assert len(rows) == len(DAY)
        assert {"period", "needed", "on", "utilization", "energy_kJ"} <= set(rows[0])

    def test_empty_profile_rejected(self):
        with pytest.raises(ValueError):
            planner().plan([])


class TestValidation:
    def test_constructor_guards(self):
        with pytest.raises(ValueError):
            DynamicCapacityPlanner([], 0.01)
        with pytest.raises(ValueError):
            planner(period_length=0.0)
        with pytest.raises(ValueError):
            planner(hold_periods=-1)
        with pytest.raises(ValueError):
            planner(boot_energy=-1.0)
        with pytest.raises(ValueError):
            planner(min_servers=0)
