"""Unit tests for the high-level ConsolidationPlanner."""

import pytest

from repro.core.consolidation import ConsolidationPlanner
from repro.core.heterogeneous import HeterogeneousPool, ServerClass
from repro.core.inputs import ResourceKind, ServiceSpec
from repro.core.power import ServerPowerModel

CPU = ResourceKind.CPU
DISK = ResourceKind.DISK_IO


def services():
    return [
        ServiceSpec(
            "web", 1200.0, {CPU: 3360.0, DISK: 1420.0}, {CPU: 0.65, DISK: 0.8}
        ),
        ServiceSpec("db", 80.0, {CPU: 100.0}, {CPU: 0.9}),
    ]


class TestPlanner:
    def test_plan_reproduces_group2(self):
        report = ConsolidationPlanner().plan(services(), 0.01)
        assert report.dedicated_servers == 8
        assert report.consolidated_servers == 4
        assert report.infrastructure_saving == pytest.approx(0.5)

    def test_plan_with_platform_effects(self):
        planner = ConsolidationPlanner(
            xen_idle_factor=0.91, xen_workload_factor=0.70
        )
        report = planner.plan(services(), 0.01)
        assert report.power_saving == pytest.approx(0.53, abs=0.04)

    def test_report_text_mentions_counts(self):
        text = ConsolidationPlanner().plan(services(), 0.01).to_text()
        assert "M = 8" in text
        assert "N = 4" in text
        assert "web" in text and "db" in text

    def test_custom_power_model_used(self):
        report_cheap = ConsolidationPlanner(
            power_model=ServerPowerModel(10.0, 20.0)
        ).plan(services(), 0.01)
        report_std = ConsolidationPlanner().plan(services(), 0.01)
        assert (
            report_cheap.power.dedicated_power < report_std.power.dedicated_power
        )

    def test_inventory_packing(self):
        big = ServerClass("big", {CPU: 16.0, DISK: 100.0}, count=8)
        small = ServerClass("small", {CPU: 8.0, DISK: 100.0}, count=4)
        planner = ConsolidationPlanner(
            inventory=HeterogeneousPool([big, small], reference=big)
        )
        report = planner.plan(services(), 0.01)
        assert report.consolidated_packing == {"big": 4}
        assert report.dedicated_packing == {"big": 8}
        assert "packing" in report.to_text()

    def test_utilization_improvement_exposed(self):
        report = ConsolidationPlanner().plan(services(), 0.01)
        assert report.utilization_improvement > 1.0


class TestSweeps:
    def test_loss_probability_sweep_monotone(self):
        reports = ConsolidationPlanner().sweep_loss_probability(
            services(), [0.001, 0.01, 0.1]
        )
        ns = [r.consolidated_servers for r in reports]
        assert ns == sorted(ns, reverse=True)

    def test_workload_scale_sweep_monotone(self):
        reports = ConsolidationPlanner().sweep_workload_scale(
            services(), 0.01, [0.5, 1.0, 2.0, 4.0]
        )
        ms = [r.dedicated_servers for r in reports]
        ns = [r.consolidated_servers for r in reports]
        assert ms == sorted(ms)
        assert ns == sorted(ns)

    def test_scaling_improves_multiplexing(self):
        # Statistical multiplexing: at larger scale, N/M shrinks.
        reports = ConsolidationPlanner().sweep_workload_scale(
            services(), 0.01, [1.0, 10.0]
        )
        ratio_small = reports[0].consolidated_servers / reports[0].dedicated_servers
        ratio_large = reports[1].consolidated_servers / reports[1].dedicated_servers
        assert ratio_large <= ratio_small + 1e-9
