"""Unit tests for heterogeneous-server normalization."""

import pytest

from repro.core.heterogeneous import HeterogeneousPool, ServerClass
from repro.core.inputs import ResourceKind

CPU = ResourceKind.CPU
DISK = ResourceKind.DISK_IO

# The paper's normalization example: two 2.0 GHz quad-cores = 1.0; one = 0.5.
BIG = ServerClass("dual-quad", {CPU: 16.0, DISK: 100.0}, count=4)
SMALL = ServerClass("single-quad", {CPU: 8.0, DISK: 100.0}, count=6)


class TestServerClass:
    def test_normalized_capacity_paper_example(self):
        assert SMALL.normalized_capacity(BIG, CPU) == pytest.approx(0.5)
        assert BIG.normalized_capacity(BIG, CPU) == pytest.approx(1.0)

    def test_bottleneck_is_min_ratio(self):
        # SMALL matches BIG on disk but halves CPU -> bottleneck 0.5.
        assert SMALL.normalized_bottleneck(BIG) == pytest.approx(0.5)

    def test_measured_scale_overrides_spec(self):
        # The paper's AMD-vs-Intel observation: spec ratios can be ~20% off.
        intel = ServerClass(
            "intel", {CPU: 18.6, DISK: 100.0}, count=1, measured_scale=0.8
        )
        assert intel.normalized_capacity(BIG, CPU) == pytest.approx(0.8)
        assert intel.normalized_bottleneck(BIG) == pytest.approx(0.8)

    def test_missing_resource_is_zero(self):
        no_disk = ServerClass("cpu-only", {CPU: 16.0})
        assert no_disk.normalized_capacity(BIG, DISK) == 0.0
        assert no_disk.normalized_bottleneck(BIG) == 0.0

    def test_reference_missing_resource_raises(self):
        ref = ServerClass("ref", {CPU: 16.0})
        with pytest.raises(KeyError):
            SMALL.normalized_capacity(ref, DISK)

    def test_validation(self):
        with pytest.raises(ValueError):
            ServerClass("", {CPU: 1.0})
        with pytest.raises(ValueError):
            ServerClass("x", {})
        with pytest.raises(ValueError):
            ServerClass("x", {CPU: 0.0})
        with pytest.raises(ValueError):
            ServerClass("x", {CPU: 1.0}, count=-1)
        with pytest.raises(ValueError):
            ServerClass("x", {CPU: 1.0}, measured_scale=0.0)


class TestHeterogeneousPool:
    def test_normalize_totals(self):
        pool = HeterogeneousPool([BIG, SMALL], reference=BIG)
        norm = pool.normalize()
        assert norm.equivalent_servers == pytest.approx(4 * 1.0 + 6 * 0.5)
        assert norm.per_class_equivalents["dual-quad"] == pytest.approx(4.0)
        assert norm.per_class_equivalents["single-quad"] == pytest.approx(3.0)
        assert norm.whole_servers == 7

    def test_default_reference_is_largest(self):
        pool = HeterogeneousPool([SMALL, BIG])
        assert pool.reference is BIG

    def test_can_supply(self):
        pool = HeterogeneousPool([BIG, SMALL], reference=BIG)
        assert pool.can_supply(7.0)
        assert not pool.can_supply(7.5)

    def test_pack_prefers_large_machines(self):
        pool = HeterogeneousPool([BIG, SMALL], reference=BIG)
        plan = pool.pack(3.0)
        assert plan == {"dual-quad": 3}

    def test_pack_spills_to_small(self):
        pool = HeterogeneousPool([BIG, SMALL], reference=BIG)
        plan = pool.pack(5.0)
        assert plan["dual-quad"] == 4
        assert plan["single-quad"] == 2  # 2 x 0.5 covers the remaining 1.0

    def test_pack_zero_demand(self):
        pool = HeterogeneousPool([BIG], reference=BIG)
        assert pool.pack(0.0) == {}

    def test_pack_insufficient_raises(self):
        pool = HeterogeneousPool([BIG, SMALL], reference=BIG)
        with pytest.raises(ValueError):
            pool.pack(10.0)

    def test_pack_rejects_negative(self):
        pool = HeterogeneousPool([BIG], reference=BIG)
        with pytest.raises(ValueError):
            pool.pack(-1.0)

    def test_rejects_duplicates_and_empty(self):
        with pytest.raises(ValueError):
            HeterogeneousPool([])
        with pytest.raises(ValueError):
            HeterogeneousPool([BIG, BIG])
