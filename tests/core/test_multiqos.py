"""Unit tests for per-service QoS targets."""

import pytest

from repro.core.inputs import ModelInputs, ResourceKind, ServiceSpec
from repro.core.model import UtilityAnalyticModel
from repro.core.multiqos import solve_with_targets
from repro.queueing.erlang import min_servers

CPU = ResourceKind.CPU
DISK = ResourceKind.DISK_IO


def inputs():
    web = ServiceSpec(
        "web", 1200.0, {CPU: 3360.0, DISK: 1420.0}, {CPU: 0.65, DISK: 0.8}
    )
    db = ServiceSpec("db", 80.0, {CPU: 100.0}, {CPU: 0.9})
    return ModelInputs((web, db), 0.01)


class TestUniformTargetsReduceToBaseModel:
    def test_matches_fig4_solution(self):
        base = UtilityAnalyticModel(inputs()).solve()
        multi = solve_with_targets(inputs(), {})
        assert multi.dedicated_servers == base.dedicated_servers
        assert multi.consolidated_servers == base.consolidated_servers

    def test_explicit_equal_targets_match_too(self):
        multi = solve_with_targets(inputs(), {"web": 0.01, "db": 0.01})
        base = UtilityAnalyticModel(inputs()).solve()
        assert multi.consolidated_servers == base.consolidated_servers


class TestPerServiceTargets:
    def test_dedicated_islands_use_own_targets(self):
        multi = solve_with_targets(inputs(), {"web": 0.05, "db": 0.001})
        assert multi.dedicated_per_service["web"] == min_servers(
            1200.0 / 1420.0, 0.05
        )
        assert multi.dedicated_per_service["db"] == min_servers(80.0 / 100.0, 0.001)

    def test_strictest_service_binds_shared_resource(self):
        # db's tight SLA binds CPU, which both services load.
        multi = solve_with_targets(inputs(), {"web": 0.05, "db": 0.001})
        assert multi.binding_service_per_resource[CPU] == "db"

    def test_gold_tier_raises_consolidated_count(self):
        lax = solve_with_targets(inputs(), {"web": 0.05, "db": 0.05})
        gold_db = solve_with_targets(inputs(), {"web": 0.05, "db": 0.0001})
        assert gold_db.consolidated_servers > lax.consolidated_servers
        assert gold_db.sla_premium(lax) >= 1

    def test_untouched_resource_not_bound(self):
        # Disk in paper mode carries zero consolidated load (mu_di ~ inf).
        multi = solve_with_targets(inputs(), {"db": 0.001})
        assert multi.consolidated_per_resource[DISK] == 0
        assert multi.binding_service_per_resource[DISK] == "-"

    def test_offered_mode_disk_bound_by_web_only(self):
        # In offered mode disk carries web's load; web's target binds it
        # even when db is stricter (db never touches disk).
        multi = solve_with_targets(
            inputs(), {"web": 0.05, "db": 0.0001}, load_model="offered"
        )
        assert multi.binding_service_per_resource[DISK] == "web"

    def test_relaxing_everything_shrinks_fleet(self):
        tight = solve_with_targets(inputs(), {"web": 0.001, "db": 0.001})
        loose = solve_with_targets(inputs(), {"web": 0.1, "db": 0.1})
        assert loose.dedicated_servers <= tight.dedicated_servers
        assert loose.consolidated_servers <= tight.consolidated_servers


class TestValidation:
    def test_unknown_service_rejected(self):
        with pytest.raises(KeyError):
            solve_with_targets(inputs(), {"ghost": 0.01})

    def test_bad_target_rejected(self):
        with pytest.raises(ValueError):
            solve_with_targets(inputs(), {"web": 0.0})
        with pytest.raises(ValueError):
            solve_with_targets(inputs(), {"web": 1.0})
