"""Unit tests for the Section III.B.4 model applications."""

import pytest

from repro.core.applications import (
    QosBound,
    allocation_algorithm_bound,
    allocation_algorithm_score,
    virtualization_bound,
)
from repro.core.inputs import ModelInputs, ResourceKind, ServiceSpec

CPU = ResourceKind.CPU
DISK = ResourceKind.DISK_IO


def group2_inputs():
    web = ServiceSpec(
        "web", 1200.0, {CPU: 3360.0, DISK: 1420.0}, {CPU: 0.65, DISK: 0.8}
    )
    db = ServiceSpec("db", 80.0, {CPU: 100.0}, {CPU: 0.9})
    return ModelInputs((web, db), 0.01)


class TestQosBound:
    def test_goodput_accessors(self):
        b = QosBound(servers=4, dedicated_loss=0.2, consolidated_loss=0.05)
        assert b.dedicated_goodput == pytest.approx(0.8)
        assert b.consolidated_goodput == pytest.approx(0.95)
        assert b.improvement == pytest.approx(0.95 / 0.8)

    def test_total_loss_dedicated(self):
        b = QosBound(servers=1, dedicated_loss=1.0, consolidated_loss=0.5)
        assert b.improvement == float("inf")


class TestAllocationBound:
    def test_consolidation_improves_goodput(self):
        bound = allocation_algorithm_bound(group2_inputs())
        assert bound.improvement > 1.0

    def test_defaults_to_consolidated_sizing(self):
        bound = allocation_algorithm_bound(group2_inputs())
        assert bound.servers == 4  # Group 2's N

    def test_explicit_server_count(self):
        bound = allocation_algorithm_bound(group2_inputs(), servers=8)
        assert bound.servers == 8
        # At the full dedicated sizing both deployments barely block.
        assert bound.dedicated_loss <= 0.02
        assert bound.improvement == pytest.approx(1.0, abs=0.02)

    def test_fewer_servers_larger_improvement(self):
        loose = allocation_algorithm_bound(group2_inputs(), servers=6)
        tight = allocation_algorithm_bound(group2_inputs(), servers=4)
        assert tight.improvement >= loose.improvement

    def test_rejects_nonpositive_servers(self):
        with pytest.raises(ValueError):
            allocation_algorithm_bound(group2_inputs(), servers=0)


class TestVirtualizationBound:
    def test_ideal_hypervisor_beats_xen_at_same_size(self):
        inputs = group2_inputs()
        xen = allocation_algorithm_bound(inputs, servers=4)
        ideal = virtualization_bound(inputs, servers=4)
        assert ideal.consolidated_loss <= xen.consolidated_loss + 1e-12

    def test_ideal_bound_improvement_exceeds_one(self):
        assert virtualization_bound(group2_inputs(), servers=4).improvement > 1.0


class TestAllocationScore:
    def test_optimal_algorithm_scores_one(self):
        inputs = group2_inputs()
        bound = allocation_algorithm_bound(inputs)
        assert allocation_algorithm_score(bound.improvement, inputs) == pytest.approx(
            1.0
        )

    def test_no_improvement_scores_zero(self):
        assert allocation_algorithm_score(1.0, group2_inputs()) == pytest.approx(0.0)

    def test_midway_scores_half(self):
        inputs = group2_inputs()
        bound = allocation_algorithm_bound(inputs)
        mid = 1.0 + (bound.improvement - 1.0) / 2.0
        assert allocation_algorithm_score(mid, inputs) == pytest.approx(0.5, abs=0.01)

    def test_super_optimal_clipped(self):
        inputs = group2_inputs()
        bound = allocation_algorithm_bound(inputs)
        assert allocation_algorithm_score(bound.improvement * 1.5, inputs) == 1.0

    def test_rejects_nonpositive_ratio(self):
        with pytest.raises(ValueError):
            allocation_algorithm_score(0.0, group2_inputs())

    def test_no_headroom_case(self):
        # Single service, no overhead: consolidation offers nothing; any
        # non-degrading algorithm scores 1.
        s = ServiceSpec("solo", 50.0, {CPU: 100.0})
        inputs = ModelInputs((s,), 0.01)
        assert allocation_algorithm_score(1.0, inputs) == 1.0
        assert allocation_algorithm_score(0.9, inputs) == pytest.approx(0.9)
