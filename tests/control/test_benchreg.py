"""The registered control-loop benchmark workload stays deterministic.

The CI bench job times ``run_week``; this pin makes sure the workload it
times is the same one across machines and sessions — the ledger at seed
2009 is part of the determinism contract, like the golden summaries.
"""

from repro.control.benchreg import bench_controller_week, run_week
from repro.obs.bench import registered_benchmarks


class TestWeekWorkload:
    def test_ledger_is_pinned_at_seed_2009(self):
        ledger = run_week(seed=2009)
        assert ledger == {
            "ticks": 336,
            "boots": 3279,
            "shutdowns": 3243,
            "migrations": 44,
        }

    def test_seed_changes_the_ledger(self):
        assert run_week(seed=7) != run_week(seed=2009)

    def test_bench_entry_is_registered(self):
        names = {b.name for b in registered_benchmarks()}
        assert "control_loop::week_1000_hosts" in names
        assert bench_controller_week() == run_week()
