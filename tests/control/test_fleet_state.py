"""FleetState: placement-aware boots and draining shutdowns."""

import pytest

from repro.control.fleet import FleetState
from repro.core.inputs import ResourceKind
from repro.virtualization.placement import VmDemand

CPU = ResourceKind.CPU


def _vms(count: int, slice_: float = 0.25) -> list[VmDemand]:
    return [VmDemand(f"vm-{i}", {CPU: slice_}) for i in range(count)]


class TestConstruction:
    def test_rejects_bad_bounds(self):
        with pytest.raises(ValueError):
            FleetState(0, [], initial_on=1)
        with pytest.raises(ValueError):
            FleetState(4, [], initial_on=0)
        with pytest.raises(ValueError):
            FleetState(4, [], initial_on=5)
        with pytest.raises(ValueError):
            FleetState(4, [], initial_on=2, placement="bogus")

    def test_spread_distributes_across_initial_hosts(self):
        fleet = FleetState(8, _vms(8), initial_on=4)
        hosts_used = set(fleet.plan.assignments.values())
        assert hosts_used == {0, 1, 2, 3}
        assert fleet.powered_count == 4
        # Worst-fit: 8 quarter-VMs over 4 hosts -> 2 each.
        for host in hosts_used:
            assert len(fleet.vms_on(host)) == 2

    def test_packed_starts_at_the_bfd_packing(self):
        fleet = FleetState(8, _vms(8), initial_on=4, placement="packed")
        # 8 * 0.25 = 2 full hosts.
        assert set(fleet.plan.assignments.values()) == {0, 1}
        assert fleet.packing_floor == 2

    def test_spread_raises_when_vms_do_not_fit(self):
        with pytest.raises(ValueError, match="no powered host has room"):
            FleetState(8, _vms(10), initial_on=2)

    def test_empty_inventory_is_fine(self):
        fleet = FleetState(4, [], initial_on=2)
        assert fleet.packing_floor == 0
        assert fleet.plan.assignments == {}


class TestScaleUp:
    def test_boots_lowest_index_off_hosts_without_migrations(self):
        fleet = FleetState(6, _vms(4), initial_on=2)
        scale = fleet.scale_up(3)
        assert scale.direction == "up"
        assert scale.requested == 3
        assert scale.completed == 3
        assert scale.hosts == (2, 3, 4)
        assert scale.migrations == ()
        assert fleet.powered_count == 5

    def test_clamps_at_the_host_universe(self):
        fleet = FleetState(4, _vms(4), initial_on=3)
        scale = fleet.scale_up(10)
        assert scale.requested == 10
        assert scale.completed == 1
        assert fleet.powered_count == 4

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            FleetState(4, [], initial_on=1).scale_up(-1)


class TestScaleDown:
    def test_empty_hosts_shut_down_free(self):
        fleet = FleetState(6, _vms(4), initial_on=2)
        fleet.scale_up(3)  # hosts 2..4 join empty
        scale = fleet.scale_down(2)
        assert scale.completed == 2
        assert scale.migrations == ()
        # Later-booted (higher-index) empty hosts retire first.
        assert scale.hosts == (4, 3)
        assert fleet.powered_count == 3

    def test_draining_shutdown_migrates_and_lands_every_vm_once(self):
        fleet = FleetState(4, _vms(8), initial_on=4)  # 2 VMs per host
        scale = fleet.scale_down(1)
        assert scale.completed == 1
        victim = scale.hosts[0]
        assert len(scale.migrations) == 2
        assert {m.source for m in scale.migrations} == {victim}
        # Every evicted VM has exactly one move and lands on a survivor.
        moved = [m.vm for m in scale.migrations]
        assert len(moved) == len(set(moved))
        for move in scale.migrations:
            assert fleet.plan.assignments[move.vm] == move.target
            assert move.target != victim
            assert fleet.powered[move.target]
        assert not fleet.powered[victim]
        fleet.plan.validate()

    def test_never_darkens_the_fleet(self):
        fleet = FleetState(4, [], initial_on=2)
        scale = fleet.scale_down(5)
        assert scale.requested == 5
        assert scale.completed == 1
        assert fleet.powered_count == 1
        again = fleet.scale_down(1)
        assert again.completed == 0
        assert fleet.powered_count == 1

    def test_undrainable_hosts_stay_powered(self):
        # Every host 90% full: no survivor can absorb another 0.9 VM.
        fleet = FleetState(3, _vms(3, slice_=0.9), initial_on=3)
        scale = fleet.scale_down(2)
        assert scale.completed == 0
        assert fleet.powered_count == 3
        fleet.plan.validate()

    def test_capacity_safety_through_a_scaling_storm(self):
        fleet = FleetState(10, _vms(12, slice_=0.3), initial_on=8)
        for step in (3, -4, 2, -5, 4, -2):
            if step > 0:
                fleet.scale_up(step)
            else:
                fleet.scale_down(-step)
            fleet.plan.validate()
            assert fleet.powered_count >= 1
            # VMs only ever sit on powered hosts.
            for vm, host in fleet.plan.assignments.items():
                assert fleet.powered[host], (vm, host)

    def test_deterministic_victim_order(self):
        a = FleetState(6, _vms(6), initial_on=4)
        b = FleetState(6, _vms(6), initial_on=4)
        da = a.scale_down(2)
        db = b.scale_down(2)
        assert da.hosts == db.hosts
        assert da.migrations == db.migrations

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            FleetState(4, [], initial_on=2).scale_down(-1)
