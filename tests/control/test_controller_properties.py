"""Property-based hardening of the control loop (the PR's test pass).

Three invariants from the ISSUE, over random traffic and scaling storms:

- **no flapping** — a host powered down is not booted again within
  ``hold_periods`` control ticks unless an overload alarm fired in
  between;
- **migration conservation** — every VM evicted by a draining shutdown
  lands on exactly one surviving host, and no VM is ever lost or
  duplicated;
- **capacity safety** — no intermediate placement overcommits a host:
  destination capacity is reserved while migrations are in flight, and
  VMs only ever sit on powered hosts.

Plus the ``hold_periods`` boundary pin shared with
``tests/core/test_dynamic_properties.py``: the first shutdown lands
exactly ``hold_periods`` periods after demand drops, never earlier.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.control.controller import ConsolidationController
from repro.control.fleet import FleetState
from repro.core.dynamic import DynamicCapacityPlanner
from repro.core.inputs import ResourceKind, ServiceSpec
from repro.core.power import ServerPowerModel
from repro.virtualization.placement import VmDemand

CPU = ResourceKind.CPU
MU = 2.0

# Rates drawn from a small lattice so the Erlang cache carries the load
# across examples (the analytic model runs once per distinct rate).
rate_values = st.sampled_from([1.0, 2.0, 4.0, 6.0, 8.0, 10.0, 12.0])
rate_seqs = st.lists(rate_values, min_size=6, max_size=24)


def _planner(hold_periods: int = 1) -> DynamicCapacityPlanner:
    return DynamicCapacityPlanner(
        [ServiceSpec("svc", 1.0, {CPU: MU}, {CPU: 1.0})],
        0.02,
        power_model=ServerPowerModel(),
        period_length=1800.0,
        hold_periods=hold_periods,
    )


def _fleet(n_vms: int = 4) -> FleetState:
    vms = [VmDemand(f"vm-{i}", {CPU: 0.25}) for i in range(n_vms)]
    return FleetState(24, vms, initial_on=6)


@settings(max_examples=25, deadline=None)
@given(rate_seqs, st.integers(min_value=0, max_value=3))
def test_no_flapping_without_overload(rates, hold):
    """A shutdown is never undone within hold_periods absent an overload."""
    planner = _planner(hold_periods=hold)
    fleet = _fleet()
    controller = ConsolidationController(planner, fleet)
    powered_before = set(fleet.powered_hosts())
    shut_at: dict[int, int] = {}  # host -> tick of its last shutdown
    overload_fires: list[int] = []
    for i, rate in enumerate(rates):
        r = {"svc": rate}
        controller.observe(0.5 * i, r, busy=planner.offered_load(r))
        if controller.events and any(
            e.kind == "overload" and e.state == "fire" and e.t == 0.5 * i
            for e in controller.events
        ):
            overload_fires.append(i)
        powered_after = set(fleet.powered_hosts())
        for host in powered_before - powered_after:
            shut_at[host] = i
        for host in powered_after - powered_before:
            if host in shut_at and i - shut_at[host] <= hold:
                assert any(
                    shut_at[host] < f <= i for f in overload_fires
                ), (
                    f"host {host} rebooted {i - shut_at[host]} ticks after "
                    f"shutdown with no overload fire (hold={hold})"
                )
        powered_before = powered_after


@settings(max_examples=25, deadline=None)
@given(
    st.lists(
        st.tuples(st.sampled_from(["up", "down"]), st.integers(1, 6)),
        min_size=1,
        max_size=12,
    ),
    st.integers(min_value=2, max_value=14),
)
def test_migration_conservation_and_capacity_safety(steps, n_vms):
    """Scaling storms never lose, duplicate, or overcommit a VM."""
    vms = [VmDemand(f"vm-{i}", {CPU: 0.3}) for i in range(n_vms)]
    fleet = FleetState(12, vms, initial_on=min(8, max(n_vms, 2)))
    names = {vm.name for vm in vms}
    for direction, count in steps:
        if direction == "up":
            scale = fleet.scale_up(count)
            assert scale.migrations == ()
        else:
            scale = fleet.scale_down(count)
            # Conservation: each evicted VM moves exactly once, off the
            # victim, onto a host that is still powered.
            moved = [m.vm for m in scale.migrations]
            assert len(moved) == len(set(moved))
            for move in scale.migrations:
                assert move.source in scale.hosts
                assert move.target not in scale.hosts
                assert fleet.powered[move.target]
                assert fleet.plan.assignments[move.vm] == move.target
        # Safety: every VM still placed, exactly once, on a powered host,
        # and no host over capacity.
        assert set(fleet.plan.assignments) == names
        fleet.plan.validate()
        for vm, host in fleet.plan.assignments.items():
            assert fleet.powered[host], (vm, host)
        assert fleet.powered_count >= 1


@settings(max_examples=20, deadline=None)
@given(
    st.integers(min_value=0, max_value=4),
    st.integers(min_value=1, max_value=4),
)
def test_hold_periods_boundary_is_exact(hold, high_len):
    """planner.plan shrinks exactly hold periods after the drop, not before.

    ``below_since > hold_periods`` with the streak already 1 in the drop
    period puts the first shutdown at index ``drop + hold`` — the audit
    the ISSUE asked for found no off-by-one, and this pins it.
    """
    planner = _planner(hold_periods=hold)
    high = {"svc": 12.0}
    low = {"svc": 2.0}
    profile = [high] * high_len + [low] * (hold + 3)
    plan = planner.plan(profile)
    drop = high_len
    shut_periods = [p.period for p in plan.periods if p.shut_down > 0]
    assert shut_periods == [drop + hold]
    # Before the boundary the peak fleet stays on; at it, the low size.
    for p in plan.periods[drop : drop + hold]:
        assert p.servers_on == plan.periods[0].servers_on
    assert plan.periods[drop + hold].servers_on == planner.servers_needed(low)


@settings(max_examples=15, deadline=None)
@given(rate_seqs)
def test_controller_never_darkens_and_meets_floor(rates):
    planner = _planner()
    fleet = _fleet(n_vms=8)
    controller = ConsolidationController(planner, fleet)
    for i, rate in enumerate(rates):
        r = {"svc": rate}
        d = controller.observe(0.5 * i, r, busy=planner.offered_load(r))
        assert d.servers_after >= max(1, fleet.packing_floor)
        assert d.servers_after == fleet.powered_count
