"""ConsolidationController: alarm semantics, actions, ledger, DES binding."""

import math

import numpy as np
import pytest

from repro.control.controller import (
    PRESSURE_SERIES,
    ConsolidationController,
    ControllerConfig,
    _LiveRule,
)
from repro.control.fleet import FleetState
from repro.core.dynamic import DynamicCapacityPlanner
from repro.core.inputs import ResourceKind, ServiceSpec
from repro.core.power import ServerPowerModel
from repro.obs.alarms import AlarmManager, AlarmRule
from repro.obs.timeseries import TelemetryBus, scoped_bus
from repro.simulation.loss_network import LossNetwork, ServiceTraffic

CPU = ResourceKind.CPU
MU = 2.0


def _planner(**kwargs) -> DynamicCapacityPlanner:
    defaults = dict(
        power_model=ServerPowerModel(),
        period_length=1800.0,
        hold_periods=1,
    )
    defaults.update(kwargs)
    return DynamicCapacityPlanner(
        [ServiceSpec("svc", 1.0, {CPU: MU}, {CPU: 1.0})], 0.02, **defaults
    )


def _fleet(max_hosts: int = 40, initial_on: int = 6) -> FleetState:
    from repro.virtualization.placement import VmDemand

    vms = [VmDemand(f"vm-{i}", {CPU: 0.25}) for i in range(4)]
    return FleetState(max_hosts, vms, initial_on=initial_on)


class TestConfig:
    def test_defaults_validate(self):
        cfg = ControllerConfig()
        over, under = cfg.rules()
        assert over.kind == "overload" and under.kind == "underload"
        assert over.series == under.series == PRESSURE_SERIES

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"interval": 0.0},
            {"headroom": -0.1},
            {"underload_pressure": 0.0},
            {"underload_pressure": 1.2},  # >= overload_pressure
            {"overload_clear": 1.5},  # clear above fire: AlarmRule rejects
            {"underload_clear": 0.5},  # clear below fire for underload
        ],
    )
    def test_rejects_bad_bands(self, kwargs):
        with pytest.raises(ValueError):
            ControllerConfig(**kwargs)


class TestLiveRuleMatchesAlarmManager:
    """The incremental evaluator must reproduce the post-hoc walk."""

    @pytest.mark.parametrize(
        "values",
        [
            [0.5, 0.6, 1.1, 1.2, 1.3, 0.8, 0.7, 1.0, 1.05, 0.85],
            [1.2] * 5 + [0.5] * 5,
            [0.95, 1.0, 1.0, 0.89, 1.0, 1.0, 0.89],
            [0.7, 0.7, 0.7, 0.9, 0.7, 0.7],
            [1.5],
        ],
    )
    @pytest.mark.parametrize("kind", ["overload", "underload"])
    def test_transitions_match_post_hoc_walk(self, values, kind):
        if kind == "overload":
            rule = AlarmRule(
                "r", "s", "overload", threshold=1.0, clear=0.9,
                window=2, debounce=2,
            )
        else:
            rule = AlarmRule(
                "r", "s", "underload", threshold=0.75, clear=0.85,
                window=2, debounce=2,
            )
        live = _LiveRule(rule)
        incremental = []
        for i, value in enumerate(values):
            change = live.step(value)
            if change is not None:
                incremental.append((change, i))

        bus = TelemetryBus(bucket_width=1.0, max_buckets=64)
        gauge = bus.gauge("s")
        for i, value in enumerate(values):
            gauge.set(float(i), value)
        gauge.finalize(float(len(values)))
        events = AlarmManager([rule]).evaluate(bus)
        # The post-hoc walk stamps each decision at the bucket's *end*
        # ((i+1)*width); the live rule reacts inside bucket i.  Same
        # bucket, shifted timestamp.
        post_hoc = [(e.state, int(e.t) - 1) for e in events]
        assert incremental == post_hoc


class TestControlLoop:
    def test_boot_on_sustained_overload(self):
        planner = _planner()
        fleet = _fleet(initial_on=4)
        controller = ConsolidationController(planner, fleet)
        high = {"svc": 14.0}  # needs well over 4 servers
        decisions = [
            controller.observe(0.5 * i, high, busy=planner.offered_load(high))
            for i in range(4)
        ]
        # Debounce is 2 ticks: no action on the first, boot once firing.
        assert decisions[0].kind == "hold"
        booted = [d for d in decisions if d.kind == "boot"]
        assert booted, "sustained overload must boot"
        first = booted[0]
        assert first.servers_after == controller.target_for(first.servers_needed)
        assert first.servers_after > first.servers_before
        assert controller.boots == sum(d.booted for d in decisions)
        assert controller.boot_energy_j == controller.boots * planner.boot_energy

    def test_shrink_waits_for_hold_periods(self):
        planner = _planner(hold_periods=2)
        fleet = _fleet(max_hosts=40, initial_on=24)
        controller = ConsolidationController(planner, fleet)
        low = {"svc": 2.0}
        drop_tick = None
        shrink_tick = None
        for i in range(10):
            d = controller.observe(0.5 * i, low, busy=planner.offered_load(low))
            if drop_tick is None and d.servers_needed < d.servers_before:
                drop_tick = i
            if shrink_tick is None and d.kind == "shutdown":
                shrink_tick = i
        assert drop_tick is not None and shrink_tick is not None
        # The streak is already 1 at the drop tick, so the shutdown cannot
        # land before drop + hold_periods (same boundary as planner.plan).
        assert shrink_tick - drop_tick >= planner.hold_periods
        after = controller.fleet.powered_count
        assert after == controller.target_for(planner.servers_needed(low))

    def test_steady_state_holds_without_flapping(self):
        planner = _planner()
        fleet = _fleet(max_hosts=40, initial_on=10)
        controller = ConsolidationController(planner, fleet)
        rates = {"svc": 10.0}
        kinds = [
            controller.observe(0.5 * i, rates, busy=planner.offered_load(rates)).kind
            for i in range(20)
        ]
        # After the initial convergence the controller settles.
        assert all(k == "hold" for k in kinds[6:])

    def test_energy_ledger_matches_planner_algebra(self):
        planner = _planner()
        fleet = _fleet(initial_on=6)
        controller = ConsolidationController(planner, fleet)
        rates = {"svc": 6.0}
        busy = 3.0
        decision = controller.observe(0.0, rates, busy=busy)
        assert decision.kind == "hold"
        on = decision.servers_after
        util = busy / on
        expected = on * planner.power_model.draw(util) * planner.period_length
        assert controller.energy_j == pytest.approx(expected)
        assert controller.server_ticks == on
        assert controller.ticks == 1

    def test_pressure_is_scale_free(self):
        planner = _planner()
        fleet = _fleet(initial_on=6)
        controller = ConsolidationController(planner, fleet)
        rates = {"svc": 6.0}
        d = controller.observe(0.0, rates, busy=planner.offered_load(rates))
        assert d.pressure == pytest.approx(d.servers_needed / d.servers_before)

    def test_finalize_emits_open_at_exit(self):
        planner = _planner()
        fleet = _fleet(max_hosts=8, initial_on=8)
        controller = ConsolidationController(planner, fleet)
        high = {"svc": 40.0}  # overload that can never be relieved
        for i in range(5):
            controller.observe(0.5 * i, high, busy=planner.offered_load(high))
        events = controller.finalize(2.5)
        states = [(e.rule, e.state) for e in events]
        assert ("control-overload", "fire") in states
        assert ("control-overload", "open_at_exit") in states

    def test_summary_is_golden_pinnable(self):
        planner = _planner()
        controller = ConsolidationController(planner, _fleet())
        rates = {"svc": 5.0}
        for i in range(4):
            controller.observe(0.5 * i, rates, busy=planner.offered_load(rates))
        summary = controller.summary()
        assert summary["ticks"] == 4
        assert summary["server_hours"] == pytest.approx(
            summary["server_ticks"] * 0.5, abs=1e-3
        )
        for key in (
            "energy_kwh", "boot_energy_kwh", "migration_energy_kwh",
            "boots", "shutdowns", "migrations", "decisions",
            "overload_fires", "underload_fires", "alarm_clears",
        ):
            assert key in summary

    def test_telemetry_series_recorded_on_scoped_bus(self):
        bus = TelemetryBus(bucket_width=0.5, max_buckets=64)
        planner = _planner()
        with scoped_bus(bus):
            controller = ConsolidationController(
                planner, _fleet(), ControllerConfig(pool="t")
            )
            rates = {"svc": 6.0}
            for i in range(3):
                controller.observe(0.5 * i, rates, busy=planner.offered_load(rates))
            controller.finalize(1.5)
        names = {s.name for s in bus.series()}
        assert {
            "control.pressure", "control.servers_on", "control.servers_needed",
        } <= names


class TestDesBinding:
    def test_loss_network_drives_the_controller(self):
        planner = _planner()
        fleet = _fleet(max_hosts=20, initial_on=8)
        controller = ConsolidationController(planner, fleet)
        traffic = ServiceTraffic.exponential("svc", 8.0, {CPU: MU})
        network = LossNetwork(
            fleet.powered_count, [traffic], pool="binding",
            power_model=ServerPowerModel(),
        )
        rng = np.random.default_rng(11)
        result = network.run(12.0, rng, control=controller)
        # One tick per interval over the horizon.
        assert controller.ticks == int(12.0 / controller.interval)
        assert 0.0 <= result.overall_loss <= 1.0
        # The fleet never darkens under control.
        assert controller.fleet.powered_count >= 1

    def test_rejects_non_positive_capacity(self):
        class Broken:
            interval = 0.5

            def tick(self, t, rates, busy):
                return 0

        traffic = ServiceTraffic.exponential("svc", 2.0, {CPU: MU})
        network = LossNetwork(4, [traffic], pool="broken")
        with pytest.raises(ValueError):
            network.run(2.0, np.random.default_rng(1), control=Broken())
