"""The live-migration cost model's arithmetic and validation."""

import pytest

from repro.control.migration import MigrationCost, MigrationCostModel
from repro.core.power import ServerPowerModel


class TestModelValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"vm_memory_gb": 0.0},
            {"vm_memory_gb": -1.0},
            {"bandwidth_gbps": 0.0},
            {"dirty_page_factor": -0.1},
            {"source_cpu_overhead": -0.1},
            {"source_cpu_overhead": 1.5},
        ],
    )
    def test_rejects_bad_knobs(self, kwargs):
        with pytest.raises(ValueError):
            MigrationCostModel(**kwargs)

    def test_defaults_are_valid(self):
        model = MigrationCostModel()
        assert model.vm_memory_gb == 4.0
        assert model.bandwidth_gbps == 10.0


class TestArithmetic:
    def test_data_includes_dirty_page_retransmission(self):
        model = MigrationCostModel(vm_memory_gb=4.0, dirty_page_factor=0.25)
        assert model.data_gb == pytest.approx(5.0)

    def test_duration_is_bits_over_bandwidth(self):
        model = MigrationCostModel(
            vm_memory_gb=4.0, bandwidth_gbps=10.0, dirty_page_factor=0.25
        )
        # 5 GiB * 8 bits / 10 Gb/s = 4 s.
        assert model.duration_s == pytest.approx(4.0)

    def test_source_energy_uses_dynamic_range_only(self):
        model = MigrationCostModel(
            vm_memory_gb=4.0, bandwidth_gbps=10.0,
            dirty_page_factor=0.25, source_cpu_overhead=0.10,
        )
        power = ServerPowerModel(250.0, 295.0)
        # 45 W dynamic range * 10% * 4 s = 18 J.
        assert model.source_energy_j(power) == pytest.approx(18.0)

    def test_drain_serialises_on_the_source_nic(self):
        model = MigrationCostModel()
        assert model.drain_seconds(3) == pytest.approx(3 * model.duration_s)
        assert model.drain_seconds(0) == 0.0
        with pytest.raises(ValueError):
            model.drain_seconds(-1)

    def test_batch_cost_charges_transfer_plus_drain(self):
        model = MigrationCostModel(
            vm_memory_gb=4.0, bandwidth_gbps=10.0,
            dirty_page_factor=0.25, source_cpu_overhead=0.10,
        )
        power = ServerPowerModel(250.0, 295.0)
        cost = model.batch_cost({0: 2, 3: 1}, power)
        assert cost.migrations == 3
        assert cost.data_gb == pytest.approx(15.0)
        assert cost.duration_s == pytest.approx(12.0)
        # 3 transfers * 18 J + base 250 W * (8 s + 4 s) drain.
        assert cost.energy_j == pytest.approx(3 * 18.0 + 250.0 * 12.0)

    def test_empty_batch_is_free(self):
        cost = MigrationCostModel().batch_cost({}, ServerPowerModel())
        assert cost.migrations == 0
        assert cost.energy_j == 0.0

    def test_costs_add(self):
        a = MigrationCost(1, 5.0, 4.0, 18.0)
        b = MigrationCost(2, 10.0, 8.0, 36.0)
        total = a + b
        assert total == MigrationCost(3, 15.0, 12.0, 54.0)
