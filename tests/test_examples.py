"""Every shipped example must run to completion and produce its headline.

Executed in-process (runpy) so coverage tools see them and failures carry
real tracebacks.
"""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"

CASES = {
    "quickstart.py": "M (dedicated)",
    "capacity_planning.py": "Growth sweep",
    "measure_impact_factors.py": "Impact-factor measurement",
    "consolidation_simulation.py": "Model optimism check",
    "evaluate_allocation_algorithms.py": "Analytic bound",
    "power_analysis.py": "24-hour fleet energy",
    "dynamic_capacity_planning.py": "24-hour summary",
    "reliability_planning.py": "N + k redundancy",
}


@pytest.mark.parametrize("script,marker", sorted(CASES.items()))
def test_example_runs(script, marker, capsys, monkeypatch):
    path = EXAMPLES / script
    assert path.exists(), f"missing example {script}"
    # Examples live at repo root in their docs; run them from there.
    monkeypatch.chdir(EXAMPLES.parent)
    runpy.run_path(str(path), run_name="__main__")
    out = capsys.readouterr().out
    assert marker in out, f"{script} output missing {marker!r}"
    assert len(out) > 200


def test_deployment_json_exists():
    assert (EXAMPLES / "deployment.json").exists()


def test_every_example_is_tested():
    scripts = {p.name for p in EXAMPLES.glob("*.py")}
    assert scripts == set(CASES), (
        "examples directory and test cases out of sync: "
        f"{scripts.symmetric_difference(set(CASES))}"
    )
