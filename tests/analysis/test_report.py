"""Unit tests for the report renderers."""

import numpy as np
import pytest

from repro.analysis.report import format_kv, format_series, format_table


class TestFormatTable:
    def test_renders_rows_and_header(self):
        text = format_table(
            [{"a": 1, "b": "x"}, {"a": 2, "b": "y"}], title="T"
        )
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "b" in lines[1]
        assert "1" in lines[3] and "y" in lines[4]

    def test_column_selection_and_order(self):
        text = format_table([{"a": 1, "b": 2}], columns=["b", "a"])
        header = text.splitlines()[0]
        assert header.index("b") < header.index("a")

    def test_missing_cells_blank(self):
        text = format_table([{"a": 1}, {"b": 2}])
        assert "a" in text and "b" in text

    def test_empty(self):
        assert "(no rows)" in format_table([])

    def test_empty_rows_keep_title(self):
        assert format_table([], title="T") == "T\n(no rows)"

    def test_float_formatting(self):
        text = format_table([{"x": 0.000012345, "y": 123456.0, "z": 0.5}])
        assert "e-05" in text
        assert "e+05" in text
        assert "0.5" in text

    def test_nan_and_zero(self):
        text = format_table([{"x": float("nan"), "y": 0.0}])
        assert "nan" in text
        assert "0" in text

    def test_magnitude_boundaries(self):
        # Exactly 1e5 switches to scientific; just below stays fixed-point.
        hi = format_table([{"x": 1e5}]).splitlines()[-1].strip()
        assert hi == "1.000e+05"
        below_hi = format_table([{"x": 99999.0}]).splitlines()[-1].strip()
        assert "e+05" not in below_hi or below_hi == "1e+05"  # %.4g rounding
        # Exactly 1e-3 stays fixed-point; just below switches to scientific.
        lo = format_table([{"x": 1e-3}]).splitlines()[-1].strip()
        assert lo == "0.001"
        below_lo = format_table([{"x": 0.0009}]).splitlines()[-1].strip()
        assert below_lo == "9.000e-04"

    def test_negative_zero_renders_as_zero(self):
        assert format_table([{"x": -0.0}]).splitlines()[-1].strip() == "0"

    def test_numpy_scalars_format_like_floats(self):
        text = format_table([{"x": np.float64(0.5), "n": float(np.nan)}])
        assert "0.5" in text and "nan" in text


class TestFormatSeries:
    def test_aligned_columns(self):
        text = format_series(
            [1.0, 2.0], {"f": [10.0, 20.0], "g": [1.0, 2.0]}, x_label="t"
        )
        lines = text.splitlines()
        assert lines[0].split() == ["t", "f", "g"]
        assert len(lines) == 4

    def test_mismatched_series_rejected(self):
        with pytest.raises(ValueError):
            format_series([1.0, 2.0], {"f": [1.0]})


class TestFormatKv:
    def test_alignment(self):
        text = format_kv({"short": 1, "a_long_key": 2.5}, title="Summary")
        lines = text.splitlines()
        assert lines[0] == "Summary"
        assert all(" : " in l for l in lines[1:])

    def test_empty(self):
        assert "(empty)" in format_kv({})
