"""Unit tests for sequential run-length control."""

import numpy as np
import pytest

from repro.analysis.convergence import run_until_precise


class TestRunUntilPrecise:
    def test_constant_statistic_converges_immediately(self):
        est = run_until_precise(lambda i: 5.0, rel_precision=0.01)
        assert est.converged
        assert est.mean == 5.0
        assert est.half_width == 0.0
        assert est.replications == 5  # min_replications

    def test_noisy_statistic_converges(self):
        rng = np.random.default_rng(3)
        est = run_until_precise(
            lambda i: float(rng.normal(10.0, 1.0)), rel_precision=0.05
        )
        assert est.converged
        assert est.mean == pytest.approx(10.0, abs=1.0)
        assert est.relative_precision <= 0.05

    def test_more_precision_more_replications(self):
        def factory():
            rng = np.random.default_rng(4)
            return lambda i: float(rng.normal(10.0, 2.0))

        loose = run_until_precise(factory(), rel_precision=0.2)
        tight = run_until_precise(factory(), rel_precision=0.02, max_replications=2000)
        assert tight.replications > loose.replications

    def test_budget_cap_reports_nonconverged(self):
        rng = np.random.default_rng(5)
        est = run_until_precise(
            lambda i: float(rng.normal(0.0, 100.0)),
            rel_precision=0.001,
            max_replications=10,
        )
        assert not est.converged
        assert est.replications == 10

    def test_absolute_precision_for_near_zero_stats(self):
        rng = np.random.default_rng(6)
        est = run_until_precise(
            lambda i: float(rng.normal(0.0, 0.01)),
            rel_precision=0.01,
            abs_precision=0.02,
            max_replications=500,
        )
        assert est.converged
        assert est.half_width <= 0.02

    def test_interval_brackets_mean(self):
        rng = np.random.default_rng(7)
        est = run_until_precise(lambda i: float(rng.normal(3.0, 0.5)))
        lo, hi = est.interval
        assert lo <= est.mean <= hi

    def test_replicate_receives_indices(self):
        seen = []
        run_until_precise(lambda i: seen.append(i) or 1.0, rel_precision=0.5)
        assert seen[:5] == [0, 1, 2, 3, 4]

    def test_simulation_integration(self):
        """Drive a real loss simulation to 10% relative precision."""
        from repro.queueing.erlang import erlang_b
        from repro.queueing.poisson import poisson_arrivals
        from repro.simulation.loss_network import simulate_loss_system

        def replicate(i: int) -> float:
            rng = np.random.default_rng(1000 + i)
            arrivals = poisson_arrivals(4.0, 2000.0, rng)
            return simulate_loss_system(arrivals, 1.0, 4, rng).loss_probability

        est = run_until_precise(replicate, rel_precision=0.1, max_replications=100)
        assert est.converged
        assert est.mean == pytest.approx(erlang_b(4, 4.0), rel=0.15)

    def test_validation(self):
        with pytest.raises(ValueError):
            run_until_precise(lambda i: 1.0, rel_precision=0.0)
        with pytest.raises(ValueError):
            run_until_precise(lambda i: 1.0, abs_precision=0.0)
        with pytest.raises(ValueError):
            run_until_precise(lambda i: 1.0, min_replications=1)
        with pytest.raises(ValueError):
            run_until_precise(lambda i: 1.0, max_replications=2, min_replications=5)
