"""Unit tests for the regression helpers."""

import numpy as np
import pytest

from repro.analysis.regression import LinearFit, fit_line, r_squared, residuals


class TestFitLine:
    def test_exact_line(self):
        x = np.arange(10.0)
        y = 2.0 * x - 3.0
        fit = fit_line(x, y)
        assert fit.slope == pytest.approx(2.0)
        assert fit.intercept == pytest.approx(-3.0)
        assert fit.r2 == pytest.approx(1.0)
        assert fit.n == 10

    def test_noisy_line(self, rng):
        x = np.linspace(0.0, 10.0, 200)
        y = -0.5 * x + 4.0 + 0.1 * rng.standard_normal(x.size)
        fit = fit_line(x, y)
        assert fit.slope == pytest.approx(-0.5, abs=0.02)
        assert fit.r2 > 0.95

    def test_predict(self):
        fit = fit_line(np.array([0.0, 1.0]), np.array([1.0, 3.0]))
        np.testing.assert_allclose(fit.predict([2.0, 3.0]), [5.0, 7.0])

    def test_str_is_informative(self):
        s = str(fit_line(np.array([0.0, 1.0]), np.array([0.0, 1.0])))
        assert "R^2" in s

    def test_validation(self):
        with pytest.raises(ValueError):
            fit_line(np.array([1.0]), np.array([1.0]))
        with pytest.raises(ValueError):
            fit_line(np.array([1.0, 2.0]), np.array([1.0]))


class TestRSquared:
    def test_perfect(self):
        y = np.array([1.0, 2.0, 3.0])
        assert r_squared(y, y) == 1.0

    def test_mean_model_is_zero(self):
        y = np.array([1.0, 2.0, 3.0])
        pred = np.full(3, 2.0)
        assert r_squared(y, pred) == pytest.approx(0.0)

    def test_degenerate_constant_series(self):
        y = np.array([5.0, 5.0])
        assert r_squared(y, y) == 1.0
        assert r_squared(y, np.array([5.0, 6.0])) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            r_squared(np.array([1.0]), np.array([1.0, 2.0]))
        with pytest.raises(ValueError):
            r_squared(np.empty(0), np.empty(0))


class TestResiduals:
    def test_basic(self):
        r = residuals(np.array([1.0, 2.0]), np.array([0.5, 2.5]))
        np.testing.assert_allclose(r, [0.5, -0.5])

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            residuals(np.array([1.0]), np.array([1.0, 2.0]))
