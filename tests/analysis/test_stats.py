"""Unit tests for the statistical helpers."""

import numpy as np
import pytest

from repro.analysis.stats import (
    batch_means,
    exponential_ks_test,
    poisson_dispersion,
)


class TestBatchMeans:
    def test_iid_normal_coverage(self, rng):
        xs = rng.normal(10.0, 2.0, 10_000)
        result = batch_means(xs, batches=20)
        assert result.mean == pytest.approx(10.0, abs=0.2)
        assert result.contains(10.0)
        assert result.batch_size == 500

    def test_correlated_series_wider_interval(self, rng):
        # An AR(1) series has wider batch-means CI than iid of same length.
        n = 8000
        iid = rng.standard_normal(n)
        ar = np.empty(n)
        ar[0] = 0.0
        eps = rng.standard_normal(n)
        for i in range(1, n):
            ar[i] = 0.9 * ar[i - 1] + eps[i]
        assert (
            batch_means(ar, batches=20).half_width
            > batch_means(iid, batches=20).half_width
        )

    def test_interval_property(self, rng):
        r = batch_means(rng.standard_normal(1000))
        lo, hi = r.interval
        assert lo <= r.mean <= hi

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            batch_means(rng.standard_normal(10), batches=1)
        with pytest.raises(ValueError):
            batch_means(np.array([1.0]), batches=5)
        with pytest.raises(ValueError):
            batch_means(rng.standard_normal(100), confidence=1.5)
        with pytest.raises(ValueError):
            batch_means(rng.standard_normal((10, 10)))


class TestKsTest:
    def test_accepts_true_distribution(self, rng):
        xs = rng.exponential(0.5, 5000)
        assert exponential_ks_test(xs, 2.0) > 0.01

    def test_rejects_wrong_rate(self, rng):
        xs = rng.exponential(0.5, 5000)
        assert exponential_ks_test(xs, 10.0) < 1e-6

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            exponential_ks_test(np.empty(0), 1.0)
        with pytest.raises(ValueError):
            exponential_ks_test(np.array([1.0]), 0.0)


class TestDispersion:
    def test_poisson_counts_near_one(self, rng):
        counts = rng.poisson(10.0, 5000)
        assert poisson_dispersion(counts) == pytest.approx(1.0, abs=0.1)

    def test_bursty_counts_exceed_one(self, rng):
        # Mixed-rate (doubly stochastic) counts are overdispersed.
        rates = rng.choice([1.0, 30.0], 5000)
        counts = rng.poisson(rates)
        assert poisson_dispersion(counts) > 2.0

    def test_constant_counts_zero(self):
        assert poisson_dispersion(np.full(10, 7.0)) == 0.0

    def test_zero_mean(self):
        assert poisson_dispersion(np.zeros(10)) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            poisson_dispersion(np.array([1.0]))
