"""Unit tests for the non-Poisson WAN traffic models."""

import numpy as np
import pytest

from repro.queueing.poisson import poisson_arrivals
from repro.workloads.sessions import index_of_dispersion
from repro.workloads.wan_traffic import MMPP2, hurst_rs, on_off_pareto_arrivals


class TestMMPP2:
    def make(self):
        return MMPP2(rate_calm=2.0, rate_burst=40.0, sojourn_calm=20.0, sojourn_burst=2.0)

    def test_mean_rate(self):
        m = self.make()
        expected = (2.0 * 20.0 + 40.0 * 2.0) / 22.0
        assert m.mean_rate == pytest.approx(expected)

    def test_long_run_count_matches_mean_rate(self, rng):
        m = self.make()
        t = m.sample(20_000.0, rng)
        assert t.size == pytest.approx(m.mean_rate * 20_000.0, rel=0.1)

    def test_sorted_within_horizon(self, rng):
        t = self.make().sample(500.0, rng)
        assert (np.diff(t) >= 0).all()
        assert t.size == 0 or (0 <= t.min() and t.max() < 500.0)

    def test_overdispersed(self, rng):
        t = self.make().sample(20_000.0, rng)
        assert index_of_dispersion(t, 20_000.0, 5.0) > 2.0

    def test_equal_rates_reduce_to_poisson(self, rng):
        m = MMPP2(5.0, 5.0, 10.0, 10.0)
        t = m.sample(10_000.0, rng)
        assert index_of_dispersion(t, 10_000.0, 5.0) == pytest.approx(1.0, abs=0.2)

    def test_validation(self):
        with pytest.raises(ValueError):
            MMPP2(-1.0, 1.0, 1.0, 1.0)
        with pytest.raises(ValueError):
            MMPP2(1.0, 1.0, 0.0, 1.0)
        with pytest.raises(ValueError):
            MMPP2(1.0, 1.0, 1.0, 1.0).sample(0.0, np.random.default_rng())


class TestOnOffPareto:
    def test_rate_scales_with_sources(self, rng):
        few = on_off_pareto_arrivals(5, 2.0, 5000.0, rng)
        many = on_off_pareto_arrivals(20, 2.0, 5000.0, rng)
        assert many.size > 2.0 * few.size

    def test_sorted(self, rng):
        t = on_off_pareto_arrivals(10, 1.0, 1000.0, rng)
        assert (np.diff(t) >= 0).all()

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            on_off_pareto_arrivals(0, 1.0, 10.0, rng)
        with pytest.raises(ValueError):
            on_off_pareto_arrivals(1, 1.0, 10.0, rng, alpha=2.5)
        with pytest.raises(ValueError):
            on_off_pareto_arrivals(1, 0.0, 10.0, rng)


class TestHurst:
    def test_poisson_is_short_range(self, rng):
        t = poisson_arrivals(5.0, 60_000.0, rng)
        h = hurst_rs(t, 60_000.0, base_window=1.0)
        assert 0.4 <= h <= 0.65

    def test_on_off_pareto_is_long_range(self, rng):
        t = on_off_pareto_arrivals(
            30, 2.0, 60_000.0, rng, alpha=1.2, mean_on=2.0, mean_off=4.0
        )
        h = hurst_rs(t, 60_000.0, base_window=1.0)
        # Theory: H = (3 - 1.2)/2 = 0.9; estimator bias tolerated.
        assert h > 0.7

    def test_lrd_exceeds_poisson(self, rng_factory):
        poisson_h = hurst_rs(
            poisson_arrivals(10.0, 40_000.0, rng_factory(1)), 40_000.0
        )
        lrd_h = hurst_rs(
            on_off_pareto_arrivals(20, 3.0, 40_000.0, rng_factory(2), alpha=1.3),
            40_000.0,
        )
        assert lrd_h > poisson_h + 0.1

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            hurst_rs(np.array([1.0, 2.0]), 10.0, base_window=1.0)
        with pytest.raises(ValueError):
            hurst_rs(np.array([1.0]), 0.0)
