"""Unit tests for the httperf-style sweep driver."""

import numpy as np
import pytest

from repro.workloads.httperf import RateSweep, SweepResult
from repro.workloads.specweb import SPECWEB_FILESET, WebServiceModel


def model_fn(vms=0):
    model = WebServiceModel.for_fileset(SPECWEB_FILESET)
    return lambda rates, rng: model.reply_rate(rates, vms)


class TestSweepResult:
    def test_peak_and_saturation(self):
        r = SweepResult(
            request_rates=np.array([1.0, 2.0, 3.0, 4.0]),
            reply_rates=np.array([1.0, 2.0, 1.8, 1.7]),
        )
        assert r.peak_throughput == 2.0
        assert r.saturation_rate == 2.0

    def test_stable_mean_over_plateau(self):
        r = SweepResult(
            request_rates=np.array([1.0, 2.0, 3.0, 4.0, 5.0]),
            reply_rates=np.array([1.0, 2.0, 1.5, 1.5, 1.5]),
        )
        assert r.stable_mean() == pytest.approx(1.5)

    def test_stable_mean_falls_back_to_peak(self):
        r = SweepResult(
            request_rates=np.array([1.0, 2.0]),
            reply_rates=np.array([1.0, 2.0]),
        )
        assert r.stable_mean() == 2.0

    def test_goodput_fraction(self):
        r = SweepResult(
            request_rates=np.array([0.0, 2.0, 4.0]),
            reply_rates=np.array([0.0, 2.0, 3.0]),
        )
        np.testing.assert_allclose(r.goodput_fraction(), [1.0, 1.0, 0.75])

    def test_validation(self):
        with pytest.raises(ValueError):
            SweepResult(np.array([1.0]), np.array([1.0, 2.0]))
        with pytest.raises(ValueError):
            SweepResult(np.empty(0), np.empty(0))


class TestRateSweep:
    def test_noiseless_run_matches_model(self, rng):
        sweep = RateSweep(model_fn())
        rates = RateSweep.default_grid(1420.0, 10)
        result = sweep.run(rates, rng, counting_noise=False)
        model = WebServiceModel.for_fileset(SPECWEB_FILESET)
        np.testing.assert_allclose(result.reply_rates, model.reply_rate(rates, 0))

    def test_counting_noise_shrinks_with_duration(self, rng_factory):
        rates = RateSweep.default_grid(1420.0, 8)
        model = WebServiceModel.for_fileset(SPECWEB_FILESET)
        clean = model.reply_rate(rates, 0)
        short = RateSweep(model_fn(), duration_per_point=1.0).run(
            rates, rng_factory(1)
        )
        long = RateSweep(model_fn(), duration_per_point=500.0).run(
            rates, rng_factory(2)
        )
        err_short = np.abs(short.reply_rates - clean).mean()
        err_long = np.abs(long.reply_rates - clean).mean()
        assert err_long < err_short

    def test_default_grid_spans_overload(self):
        grid = RateSweep.default_grid(1000.0, 20)
        assert grid.min() < 1000.0 < grid.max()
        assert grid.max() == pytest.approx(2500.0)

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            RateSweep(model_fn(), duration_per_point=0.0)
        sweep = RateSweep(model_fn())
        with pytest.raises(ValueError):
            sweep.run(np.array([-1.0]), rng)
        with pytest.raises(ValueError):
            sweep.run(np.empty(0), rng)
        with pytest.raises(ValueError):
            RateSweep.default_grid(0.0)
        with pytest.raises(ValueError):
            RateSweep.default_grid(10.0, points=1)

    def test_mismatched_throughput_fn_rejected(self, rng):
        sweep = RateSweep(lambda rates, g: np.array([1.0]))
        with pytest.raises(ValueError):
            sweep.run(np.array([1.0, 2.0]), rng)
