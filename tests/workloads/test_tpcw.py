"""Unit tests for the TPC-W-like DB service model."""

import numpy as np
import pytest

from repro.virtualization.impact import DB_CPU_IMPACT
from repro.workloads.tpcw import DbServiceModel, TpcwWorkload


class TestTpcwWorkload:
    def test_offered_wips_closed_loop_law(self):
        w = TpcwWorkload(emulated_browsers=710, think_time=7.0, response_time=0.1)
        assert w.offered_wips == pytest.approx(100.0)

    def test_zero_browsers(self):
        assert TpcwWorkload(0).offered_wips == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            TpcwWorkload(-1)
        with pytest.raises(ValueError):
            TpcwWorkload(1, think_time=0.0)


class TestDbServiceModel:
    def test_native_capacity_is_mu_dc(self):
        assert DbServiceModel().capacity(0) == 100.0

    def test_single_vm_roughly_native(self):
        # Fig. 8: native and one VM deliver about the same (the software
        # bottleneck), both ~half of multi-VM.
        model = DbServiceModel()
        assert model.capacity(1) == pytest.approx(100.0, rel=0.05)

    def test_multi_vm_speedup(self):
        model = DbServiceModel()
        assert model.capacity(4) > 1.5 * model.capacity(1)
        assert model.capacity(9) < 1.85 * 100.0 * 1.01

    def test_vcpu_scaling(self):
        model = DbServiceModel()
        full = model.capacity(2, vcpus=6)
        half = model.capacity(2, vcpus=3)
        assert half == pytest.approx(full / 2.0)

    def test_extra_vcpus_capped(self):
        model = DbServiceModel()
        assert model.capacity(2, vcpus=12) == model.capacity(2, vcpus=6)

    def test_pinning_beats_floating(self):
        model = DbServiceModel()
        assert model.capacity(2, pinned=True) > model.capacity(2, pinned=False)

    def test_wips_curve_saturates(self):
        model = DbServiceModel()
        ebs = np.array([50, 200, 800, 1600, 3200])
        wips = model.wips_curve(ebs, vms=2)
        assert (np.diff(wips) >= -1e-9).all()
        assert wips[-1] == pytest.approx(model.capacity(2), rel=1e-6)

    def test_closed_loop_linear_regime(self):
        model = DbServiceModel()
        w = TpcwWorkload(71)  # offered = 10 WIPS, far below capacity
        assert model.wips(w, vms=2) == pytest.approx(10.0)

    def test_measured_impact_factors_track_published(self, rng):
        model = DbServiceModel()
        a = model.measured_impact_factors([1, 2, 4, 8])
        expected = [DB_CPU_IMPACT.impact(v) for v in (1, 2, 4, 8)]
        np.testing.assert_allclose(a, expected, rtol=1e-6)

    def test_measure_noise_bounded(self, rng):
        model = DbServiceModel()
        ebs = np.arange(100, 2000, 200)
        noisy = model.measure_wips_curve(ebs, 2, rng, rel_noise=0.02)
        clean = model.wips_curve(ebs, 2)
        assert np.abs(noisy - clean).max() / clean.max() < 0.15

    def test_validation(self):
        with pytest.raises(ValueError):
            DbServiceModel(native_capacity=0.0)
        with pytest.raises(ValueError):
            DbServiceModel(db_vcpus=0)
        model = DbServiceModel()
        with pytest.raises(ValueError):
            model.capacity(-1)
        with pytest.raises(ValueError):
            model.capacity(2, vcpus=0)


class TestTpcwAgainstMva:
    """The DbServiceModel's WIPS law is the closed-network MVA shape."""

    def test_wips_curve_bounded_by_mva_bounds(self):
        from repro.queueing.mva import throughput_bounds

        model = DbServiceModel()
        # One server's capacity at v=2 VMs maps to a per-interaction
        # demand 1/capacity at the DB station.
        cap = model.capacity(2)
        demand = {"db": 1.0 / cap}
        for ebs in (50, 200, 800, 2000):
            wips = model.wips(TpcwWorkload(ebs), vms=2)
            light, saturation = throughput_bounds(demand, 7.1, ebs)
            assert wips <= min(light, saturation) * 1.01

    def test_saturated_wips_equals_mva_limit(self):
        from repro.queueing.mva import exact_mva

        model = DbServiceModel()
        cap = model.capacity(2)
        mva = exact_mva({"db": 1.0 / cap}, think_time=7.0, population=3000)
        assert model.wips(TpcwWorkload(3000), vms=2) == pytest.approx(
            mva.throughput, rel=0.02
        )
