"""Unit tests for the diurnal trace generators (Fig. 2 substrate)."""

import numpy as np
import pytest

from repro.workloads.traces import (
    DiurnalProfile,
    TraceBundle,
    consolidation_headroom,
)


class TestDiurnalProfile:
    def test_peak_at_peak_hour(self):
        p = DiurnalProfile("svc", base=10.0, peak=100.0, peak_hour=14.0)
        hours = np.linspace(0.0, 24.0, 241)
        rates = p.rate(hours)
        assert hours[np.argmax(rates)] == pytest.approx(14.0, abs=0.2)
        assert rates.max() == pytest.approx(100.0, abs=1e-9)

    def test_trough_at_antipode(self):
        p = DiurnalProfile("svc", base=10.0, peak=100.0, peak_hour=14.0)
        assert p.rate(np.array([2.0]))[0] == pytest.approx(10.0, abs=1e-9)

    def test_sample_non_negative(self, rng):
        p = DiurnalProfile("svc", base=0.0, peak=5.0, noise=2.0)
        xs = p.sample(np.linspace(0, 24, 100), rng)
        assert (xs >= 0.0).all()

    def test_periodicity(self):
        p = DiurnalProfile("svc", base=1.0, peak=9.0)
        assert p.rate(np.array([3.0]))[0] == pytest.approx(p.rate(np.array([27.0]))[0])

    def test_validation(self):
        with pytest.raises(ValueError):
            DiurnalProfile("", 1.0, 2.0)
        with pytest.raises(ValueError):
            DiurnalProfile("x", 5.0, 2.0)  # peak < base
        with pytest.raises(ValueError):
            DiurnalProfile("x", 1.0, 2.0, peak_hour=25.0)
        with pytest.raises(ValueError):
            DiurnalProfile("x", 1.0, 2.0, noise=-0.1)


class TestTraceBundle:
    def make(self, rng, phases=(10.0, 20.0, 3.0)):
        profiles = [
            DiurnalProfile(f"svc{i}", base=20.0, peak=200.0, peak_hour=h)
            for i, h in enumerate(phases)
        ]
        return TraceBundle.sample(profiles, days=3.0, samples_per_hour=4, rng=rng)

    def test_shapes(self, rng):
        bundle = self.make(rng)
        assert len(bundle.traces) == 3
        for tr in bundle.traces.values():
            assert tr.shape == bundle.hours.shape

    def test_combined_is_sum(self, rng):
        bundle = self.make(rng)
        np.testing.assert_allclose(
            bundle.combined, sum(bundle.traces.values()), rtol=1e-12
        )

    def test_peak_of_sum_below_sum_of_peaks_when_staggered(self, rng):
        bundle = self.make(rng)
        assert bundle.combined_peak() < sum(bundle.per_service_peaks().values())

    def test_headroom_positive_when_staggered(self, rng):
        assert consolidation_headroom(self.make(rng)) > 0.1

    def test_headroom_near_zero_when_aligned(self, rng):
        aligned = self.make(rng, phases=(12.0, 12.0, 12.0))
        assert consolidation_headroom(aligned) < 0.08

    def test_quantile_peaks(self, rng):
        bundle = self.make(rng)
        p100 = bundle.per_service_peaks(1.0)["svc0"]
        p95 = bundle.per_service_peaks(0.95)["svc0"]
        assert p95 <= p100

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            TraceBundle.sample([], 1.0, 4, rng)
        p = DiurnalProfile("x", 1.0, 2.0)
        with pytest.raises(ValueError):
            TraceBundle.sample([p, p], 1.0, 4, rng)
        with pytest.raises(ValueError):
            TraceBundle.sample([p], 0.0, 4, rng)
        bundle = self.make(rng)
        with pytest.raises(ValueError):
            bundle.per_service_peaks(0.0)
        with pytest.raises(ValueError):
            bundle.combined_peak(1.5)
