"""Unit tests for the diurnal trace generators (Fig. 2 substrate)."""

import numpy as np
import pytest

from repro.workloads.traces import (
    DiurnalProfile,
    FlashCrowd,
    TraceBundle,
    consolidation_headroom,
)


class TestDiurnalProfile:
    def test_peak_at_peak_hour(self):
        p = DiurnalProfile("svc", base=10.0, peak=100.0, peak_hour=14.0)
        hours = np.linspace(0.0, 24.0, 241)
        rates = p.rate(hours)
        assert hours[np.argmax(rates)] == pytest.approx(14.0, abs=0.2)
        assert rates.max() == pytest.approx(100.0, abs=1e-9)

    def test_trough_at_antipode(self):
        p = DiurnalProfile("svc", base=10.0, peak=100.0, peak_hour=14.0)
        assert p.rate(np.array([2.0]))[0] == pytest.approx(10.0, abs=1e-9)

    def test_sample_non_negative(self, rng):
        p = DiurnalProfile("svc", base=0.0, peak=5.0, noise=2.0)
        xs = p.sample(np.linspace(0, 24, 100), rng)
        assert (xs >= 0.0).all()

    def test_periodicity(self):
        p = DiurnalProfile("svc", base=1.0, peak=9.0)
        assert p.rate(np.array([3.0]))[0] == pytest.approx(p.rate(np.array([27.0]))[0])

    def test_validation(self):
        with pytest.raises(ValueError):
            DiurnalProfile("", 1.0, 2.0)
        with pytest.raises(ValueError):
            DiurnalProfile("x", 5.0, 2.0)  # peak < base
        with pytest.raises(ValueError):
            DiurnalProfile("x", 1.0, 2.0, peak_hour=25.0)
        with pytest.raises(ValueError):
            DiurnalProfile("x", 1.0, 2.0, noise=-0.1)

    def test_sample_deterministic_under_fixed_seed(self):
        p = DiurnalProfile("svc", base=2.0, peak=20.0, noise=0.1)
        hours = np.linspace(0.0, 48.0, 97)
        a = p.sample(hours, np.random.default_rng(2009))
        b = p.sample(hours, np.random.default_rng(2009))
        np.testing.assert_array_equal(a, b)


class TestFlashCrowd:
    def test_multiplier_bounded(self):
        flash = FlashCrowd(hour=20.0, magnitude=3.0, duration=2.0)
        hours = np.linspace(0.0, 72.0, 1441)
        mult = flash.multiplier(hours)
        assert (mult >= 1.0).all()
        assert (mult <= 3.0).all()

    def test_peak_at_centre_and_unity_outside(self):
        flash = FlashCrowd(hour=20.0, magnitude=3.0, duration=2.0)
        assert flash.multiplier(np.array([20.0]))[0] == pytest.approx(3.0)
        # Exactly 1 outside the +/- duration/2 window.
        assert flash.multiplier(np.array([17.0]))[0] == 1.0
        assert flash.multiplier(np.array([23.0]))[0] == 1.0

    def test_wraps_around_midnight(self):
        flash = FlashCrowd(hour=23.5, magnitude=2.0, duration=2.0)
        # 0.25h on day 2 sits 0.75h past the 23.5h centre — inside the bump.
        assert flash.multiplier(np.array([24.25]))[0] > 1.0

    def test_applied_multiplicatively_to_profile(self):
        flash = FlashCrowd(hour=2.0, magnitude=2.5, duration=1.0)
        plain = DiurnalProfile("svc", base=4.0, peak=10.0, peak_hour=14.0)
        flashed = DiurnalProfile(
            "svc", base=4.0, peak=10.0, peak_hour=14.0, flash=flash
        )
        at_centre = np.array([2.0])
        assert flashed.rate(at_centre)[0] == pytest.approx(
            2.5 * plain.rate(at_centre)[0]
        )
        away = np.array([14.0])
        assert flashed.rate(away)[0] == pytest.approx(plain.rate(away)[0])

    def test_validation(self):
        with pytest.raises(ValueError):
            FlashCrowd(hour=24.0, magnitude=2.0)
        with pytest.raises(ValueError):
            FlashCrowd(hour=1.0, magnitude=0.5)
        with pytest.raises(ValueError):
            FlashCrowd(hour=1.0, magnitude=2.0, duration=0.0)


class TestTraceBundle:
    def make(self, rng, phases=(10.0, 20.0, 3.0)):
        profiles = [
            DiurnalProfile(f"svc{i}", base=20.0, peak=200.0, peak_hour=h)
            for i, h in enumerate(phases)
        ]
        return TraceBundle.sample(profiles, days=3.0, samples_per_hour=4, rng=rng)

    def test_shapes(self, rng):
        bundle = self.make(rng)
        assert len(bundle.traces) == 3
        for tr in bundle.traces.values():
            assert tr.shape == bundle.hours.shape

    def test_combined_is_sum(self, rng):
        bundle = self.make(rng)
        np.testing.assert_allclose(
            bundle.combined, sum(bundle.traces.values()), rtol=1e-12
        )

    def test_peak_of_sum_below_sum_of_peaks_when_staggered(self, rng):
        bundle = self.make(rng)
        assert bundle.combined_peak() < sum(bundle.per_service_peaks().values())

    def test_headroom_positive_when_staggered(self, rng):
        assert consolidation_headroom(self.make(rng)) > 0.1

    def test_headroom_near_zero_when_aligned(self, rng):
        aligned = self.make(rng, phases=(12.0, 12.0, 12.0))
        assert consolidation_headroom(aligned) < 0.08

    def test_quantile_peaks(self, rng):
        bundle = self.make(rng)
        p100 = bundle.per_service_peaks(1.0)["svc0"]
        p95 = bundle.per_service_peaks(0.95)["svc0"]
        assert p95 <= p100

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            TraceBundle.sample([], 1.0, 4, rng)
        p = DiurnalProfile("x", 1.0, 2.0)
        with pytest.raises(ValueError):
            TraceBundle.sample([p, p], 1.0, 4, rng)
        with pytest.raises(ValueError):
            TraceBundle.sample([p], 0.0, 4, rng)
        bundle = self.make(rng)
        with pytest.raises(ValueError):
            bundle.per_service_peaks(0.0)
        with pytest.raises(ValueError):
            bundle.combined_peak(1.5)

    def test_grid_mismatch_rejected(self):
        hours = np.linspace(0.0, 24.0, 25)
        with pytest.raises(ValueError, match="does not match the time grid"):
            TraceBundle(hours=hours, traces={"svc": np.zeros(7)})

    def test_sample_deterministic_under_fixed_seed(self):
        profiles = [DiurnalProfile("svc", base=5.0, peak=50.0, noise=0.1)]
        a = TraceBundle.sample(
            profiles, days=2.0, samples_per_hour=4,
            rng=np.random.default_rng(2009),
        )
        b = TraceBundle.sample(
            profiles, days=2.0, samples_per_hour=4,
            rng=np.random.default_rng(2009),
        )
        np.testing.assert_array_equal(a.traces["svc"], b.traces["svc"])

    def test_quantile_one_is_max(self, rng):
        bundle = self.make(rng)
        assert bundle.combined_peak(1.0) == pytest.approx(bundle.combined.max())
        peaks = bundle.per_service_peaks(1.0)
        for name, tr in bundle.traces.items():
            assert peaks[name] == pytest.approx(tr.max())
