"""Property-based tests for the workload response-surface models."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workloads.specweb import SINGLE_FILE_8KB, SPECWEB_FILESET, WebServiceModel
from repro.workloads.tpcw import DbServiceModel, TpcwWorkload

vm_counts = st.integers(min_value=0, max_value=9)
rates = st.floats(min_value=0.0, max_value=10_000.0, allow_nan=False)


@settings(max_examples=60, deadline=None)
@given(vm_counts, st.lists(rates, min_size=1, max_size=20))
def test_web_reply_never_exceeds_requests_or_capacity(vms, rate_list):
    model = WebServiceModel.for_fileset(SPECWEB_FILESET)
    r = np.asarray(rate_list)
    replies = model.reply_rate(r, vms)
    assert (replies <= r + 1e-9).all()
    assert (replies <= model.capacity(vms) + 1e-9).all()
    assert (replies >= 0.0).all()


@settings(max_examples=60, deadline=None)
@given(vm_counts)
def test_web_plateau_is_stable_fraction(vms):
    model = WebServiceModel.for_fileset(SINGLE_FILE_8KB)
    cap = model.capacity(vms)
    deep_overload = np.array([cap * 3.0, cap * 10.0])
    replies = model.reply_rate(deep_overload, vms)
    np.testing.assert_allclose(replies, model.stable_fraction * cap, rtol=1e-9)


@settings(max_examples=60, deadline=None)
@given(st.integers(min_value=1, max_value=9), st.integers(min_value=1, max_value=9))
def test_web_capacity_monotone_decreasing_in_vms(v1, v2):
    model = WebServiceModel.for_fileset(SPECWEB_FILESET)
    lo, hi = sorted((v1, v2))
    assert model.capacity(hi) <= model.capacity(lo) + 1e-9


@settings(max_examples=60, deadline=None)
@given(vm_counts, st.integers(min_value=0, max_value=5000))
def test_db_wips_bounded_by_offered_and_capacity(vms, ebs):
    model = DbServiceModel()
    w = TpcwWorkload(ebs)
    wips = model.wips(w, vms)
    assert wips <= w.offered_wips + 1e-9
    assert wips <= model.capacity(vms) + 1e-9
    assert wips >= 0.0


@settings(max_examples=60, deadline=None)
@given(st.integers(min_value=1, max_value=9))
def test_db_pinning_never_hurts(vms):
    model = DbServiceModel()
    assert model.capacity(vms, pinned=True) >= model.capacity(vms, pinned=False)


@settings(max_examples=60, deadline=None)
@given(st.integers(min_value=1, max_value=9), st.integers(min_value=1, max_value=6))
def test_db_more_vcpus_never_hurt(vms, vcpus):
    model = DbServiceModel()
    assert model.capacity(vms, vcpus=vcpus + 1) >= model.capacity(vms, vcpus=vcpus) - 1e-9


@settings(max_examples=40, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=4000), min_size=2, max_size=10))
def test_db_wips_curve_monotone_in_ebs(eb_list):
    model = DbServiceModel()
    ebs = np.sort(np.asarray(eb_list))
    wips = model.wips_curve(ebs, vms=2)
    assert (np.diff(wips) >= -1e-9).all()
