"""Unit tests for the SPECweb2005-like web service model."""

import numpy as np
import pytest

from repro.core.inputs import ResourceKind
from repro.virtualization.impact import WEB_CPU_IMPACT, WEB_DISK_IO_IMPACT
from repro.workloads.specweb import (
    SINGLE_FILE_8KB,
    SPECWEB_FILESET,
    WebFileSet,
    WebServiceModel,
)


class TestWebFileSet:
    def test_specweb_fileset_is_disk_bound(self):
        assert SPECWEB_FILESET.bottleneck is ResourceKind.DISK_IO
        assert SPECWEB_FILESET.cache_hit_fraction < 1.0

    def test_single_file_is_cpu_bound(self):
        assert SINGLE_FILE_8KB.bottleneck is ResourceKind.CPU
        assert SINGLE_FILE_8KB.cache_hit_fraction == 1.0

    def test_sizes_sum_to_total(self, rng):
        fs = WebFileSet(total_bytes=1e9, files=1000)
        sizes = fs.sample_sizes(rng)
        assert sizes.sum() == pytest.approx(1e9)
        assert sizes.shape == (1000,)
        assert (sizes > 0).all()

    def test_popularity_is_distribution(self):
        fs = WebFileSet(total_bytes=1e9, files=500)
        pop = fs.popularity()
        assert pop.sum() == pytest.approx(1.0)
        assert (np.diff(pop) <= 0).all()  # rank-ordered Zipf

    def test_bigger_cache_more_hits(self):
        small = WebFileSet(total_bytes=10e9, files=1000, cache_bytes=1e9)
        big = WebFileSet(total_bytes=10e9, files=1000, cache_bytes=8e9)
        assert big.cache_hit_fraction > small.cache_hit_fraction

    def test_validation(self):
        with pytest.raises(ValueError):
            WebFileSet(total_bytes=0.0, files=1)
        with pytest.raises(ValueError):
            WebFileSet(total_bytes=1.0, files=0)
        with pytest.raises(ValueError):
            WebFileSet(total_bytes=1.0, files=1, zipf_s=0.0)


class TestWebServiceModel:
    def test_for_fileset_picks_paper_capacities(self):
        io_model = WebServiceModel.for_fileset(SPECWEB_FILESET)
        cpu_model = WebServiceModel.for_fileset(SINGLE_FILE_8KB)
        assert io_model.native_capacity == 1420.0
        assert io_model.impact_model is WEB_DISK_IO_IMPACT
        assert cpu_model.native_capacity == 3360.0
        assert cpu_model.impact_model is WEB_CPU_IMPACT

    def test_native_curve_shape(self):
        model = WebServiceModel.for_fileset(SPECWEB_FILESET)
        rates = np.linspace(50.0, 3500.0, 60)
        replies = model.reply_rate(rates, vms=0)
        peak_idx = int(np.argmax(replies))
        # Rises to a peak then degrades to a stable plateau.
        assert (np.diff(replies[: peak_idx + 1]) >= -1e-9).all()
        assert replies[-1] < replies[peak_idx]
        assert replies[-1] == pytest.approx(
            model.stable_fraction * model.capacity(0), rel=1e-6
        )

    def test_linear_under_capacity(self):
        model = WebServiceModel.for_fileset(SINGLE_FILE_8KB)
        rates = np.array([10.0, 100.0, 1000.0])
        np.testing.assert_allclose(model.reply_rate(rates, vms=0), rates)

    def test_throughput_degrades_with_vm_count(self):
        model = WebServiceModel.for_fileset(SPECWEB_FILESET)
        caps = [model.capacity(v) for v in range(1, 10)]
        assert all(a > b for a, b in zip(caps, caps[1:]))

    def test_native_beats_vms_for_cpu_bound(self):
        model = WebServiceModel.for_fileset(SINGLE_FILE_8KB)
        assert model.capacity(0) > model.capacity(1) * 1.5

    def test_measure_adds_bounded_noise(self, rng):
        model = WebServiceModel.for_fileset(SPECWEB_FILESET)
        rates = np.linspace(100.0, 2000.0, 20)
        noisy = model.measure(rates, 0, rng, rel_noise=0.02)
        clean = model.reply_rate(rates, 0)
        assert np.abs(noisy - clean).max() / clean.max() < 0.15
        assert (noisy >= 0).all()

    def test_measured_impact_factors_match_model(self):
        model = WebServiceModel.for_fileset(SPECWEB_FILESET)
        a = model.measured_impact_factors([1, 5, 9])
        expected = [WEB_DISK_IO_IMPACT.impact(v) for v in (1, 5, 9)]
        np.testing.assert_allclose(a, expected, rtol=1e-6)

    def test_validation(self):
        with pytest.raises(ValueError):
            WebServiceModel(fileset=SPECWEB_FILESET, native_capacity=0.0)
        with pytest.raises(ValueError):
            WebServiceModel(
                fileset=SPECWEB_FILESET, native_capacity=1.0, stable_fraction=0.0
            )
        model = WebServiceModel.for_fileset(SPECWEB_FILESET)
        with pytest.raises(ValueError):
            model.capacity(-1)
        with pytest.raises(ValueError):
            model.reply_rate(np.array([-5.0]))
