"""Unit tests for session-structured workloads."""

import numpy as np
import pytest

from repro.queueing.distributions import Deterministic, Exponential
from repro.workloads.sessions import (
    SessionProfile,
    generate_session_arrivals,
    index_of_dispersion,
)


class TestSessionProfile:
    def test_request_rate(self):
        p = SessionProfile(session_rate=2.0, requests_per_session=5.0)
        assert p.request_rate == pytest.approx(10.0)

    def test_think_time_coercion(self):
        p = SessionProfile(1.0, 3.0, think_time=0.5)
        assert isinstance(p.think_time, Exponential)
        assert p.think_time.mean == pytest.approx(0.5)

    def test_validation(self):
        with pytest.raises(ValueError):
            SessionProfile(-1.0, 2.0)
        with pytest.raises(ValueError):
            SessionProfile(1.0, 0.5)


class TestGeneration:
    def test_sorted_within_horizon(self, rng):
        p = SessionProfile(1.0, 8.0, think_time=Deterministic(2.0))
        t = generate_session_arrivals(p, 500.0, rng)
        assert (np.diff(t) >= 0).all()
        assert t.size == 0 or (t >= 0).all() and t.max() < 500.0

    def test_long_run_rate(self, rng):
        p = SessionProfile(2.0, 5.0, think_time=Exponential(2.0))
        t = generate_session_arrivals(p, 5000.0, rng)
        # Boundary truncation shaves a little; allow 10%.
        assert t.size == pytest.approx(2.0 * 5.0 * 5000.0, rel=0.1)

    def test_zero_rate_empty(self, rng):
        p = SessionProfile(0.0, 5.0)
        assert generate_session_arrivals(p, 100.0, rng).size == 0

    def test_single_request_sessions_reduce_to_poisson(self, rng):
        # requests_per_session -> 1: the stream is the session Poisson
        # process itself, so dispersion ~ 1.
        p = SessionProfile(5.0, 1.0 + 1e-9)
        t = generate_session_arrivals(p, 4000.0, rng)
        assert index_of_dispersion(t, 4000.0, 10.0) == pytest.approx(1.0, abs=0.2)

    def test_sessions_are_burstier_than_poisson(self, rng):
        # Tight think times pack a session's requests into a short window:
        # dispersion well above 1.
        p = SessionProfile(0.5, 20.0, think_time=Exponential(10.0))
        t = generate_session_arrivals(p, 4000.0, rng)
        assert index_of_dispersion(t, 4000.0, 5.0) > 2.0

    def test_rejects_bad_horizon(self, rng):
        with pytest.raises(ValueError):
            generate_session_arrivals(SessionProfile(1.0, 2.0), 0.0, rng)


class TestDispersion:
    def test_poisson_reference(self, rng):
        from repro.queueing.poisson import poisson_arrivals

        t = poisson_arrivals(10.0, 3000.0, rng)
        assert index_of_dispersion(t, 3000.0, 5.0) == pytest.approx(1.0, abs=0.15)

    def test_empty_stream(self):
        assert index_of_dispersion(np.empty(0), 100.0, 10.0) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            index_of_dispersion(np.array([1.0]), 10.0, 0.0)
        with pytest.raises(ValueError):
            index_of_dispersion(np.array([1.0]), 10.0, 20.0)


class TestModelStressAblation:
    def test_bursty_arrivals_raise_blocking_above_erlang(self, rng):
        """The Poisson assumption matters: session bursts block more."""
        from repro.queueing.erlang import erlang_b, min_servers
        from repro.simulation.loss_network import simulate_loss_system

        service_rate = 1.0
        profile = SessionProfile(0.4, 10.0, think_time=Exponential(5.0))
        lam = profile.request_rate  # 4 req/s long-run
        rho = lam / service_rate
        servers = min_servers(rho, 0.05)
        bursty = generate_session_arrivals(profile, 30_000.0, rng)
        result = simulate_loss_system(bursty, 1.0 / service_rate, servers, rng)
        # Erlang promised <= 5%; bursty arrivals exceed it.
        assert result.loss_probability > erlang_b(servers, rho)
