"""Property-based tests for the flow controllers."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.virtualization.rainbow import IdealFlow, PriorityFlow, ProportionalFlow

demand_values = st.floats(min_value=0.0, max_value=100.0, allow_nan=False)
capacities = st.floats(min_value=0.0, max_value=100.0, allow_nan=False)


@st.composite
def demand_maps(draw):
    n = draw(st.integers(min_value=1, max_value=6))
    return {f"svc{i}": draw(demand_values) for i in range(n)}


CONTROLLERS = [
    ProportionalFlow(),
    IdealFlow(),
    PriorityFlow(priority_order=("svc0", "svc1")),
]


@settings(max_examples=80)
@given(demand_maps(), capacities)
def test_grants_bounded_by_capacity_and_demand(demands, capacity):
    for controller in CONTROLLERS:
        shares = controller.shares(demands, capacity)
        assert sum(shares.values()) <= capacity + 1e-6
        for name, grant in shares.items():
            assert grant >= -1e-12
            assert grant <= demands.get(name, 0.0) + 1e-6


@settings(max_examples=80)
@given(demand_maps(), capacities)
def test_work_conservation(demands, capacity):
    # Flowing controllers leave no capacity idle while demand is unmet.
    for controller in (ProportionalFlow(), IdealFlow()):
        shares = controller.shares(demands, capacity)
        served = sum(shares.values())
        total_demand = sum(demands.values())
        assert served == min(capacity, total_demand) or abs(
            served - min(capacity, total_demand)
        ) < 1e-6


@settings(max_examples=80)
@given(demand_maps(), capacities)
def test_ideal_serves_at_least_as_much_as_priority(demands, capacity):
    ideal = sum(IdealFlow().shares(demands, capacity).values())
    prio = sum(
        PriorityFlow(priority_order=tuple(sorted(demands)))
        .shares(demands, capacity)
        .values()
    )
    assert ideal >= prio - 1e-6


@settings(max_examples=80)
@given(demand_maps(), st.floats(min_value=0.1, max_value=100.0))
def test_scaling_capacity_scales_proportional_grants(demands, capacity):
    base = ProportionalFlow().shares(demands, capacity)
    doubled = ProportionalFlow().shares(demands, capacity * 2.0)
    for name in demands:
        assert doubled[name] >= base[name] - 1e-9
