"""Unit tests for the Rainbow-like flow controllers."""

import pytest

from repro.virtualization.rainbow import (
    IdealFlow,
    PriorityFlow,
    ProportionalFlow,
    StaticPartition,
)

DEMANDS = {"web": 3.0, "db": 1.0}


def total(shares):
    return sum(shares.values())


class TestStaticPartition:
    def test_fixed_split_ignores_demand(self):
        c = StaticPartition(fractions={"web": 0.5, "db": 0.5})
        shares = c.shares({"web": 10.0, "db": 0.0}, 4.0)
        assert shares == {"web": 2.0, "db": 2.0}

    def test_validation(self):
        with pytest.raises(ValueError):
            StaticPartition(fractions={})
        with pytest.raises(ValueError):
            StaticPartition(fractions={"a": 0.7, "b": 0.7})
        with pytest.raises(ValueError):
            StaticPartition(fractions={"a": -0.1})


class TestProportionalFlow:
    def test_work_conserving_under_slack(self):
        c = ProportionalFlow()
        shares = c.shares({"web": 1.0, "db": 0.2}, 4.0)
        # Everyone fully satisfied; nothing wasted clipping.
        assert shares["web"] == pytest.approx(1.0)
        assert shares["db"] == pytest.approx(0.2)

    def test_proportional_under_pressure(self):
        c = ProportionalFlow()
        shares = c.shares({"web": 3.0, "db": 1.0}, 2.0)
        assert total(shares) == pytest.approx(2.0)
        assert shares["web"] == pytest.approx(1.5)
        assert shares["db"] == pytest.approx(0.5)

    def test_equal_loss_fractions_when_rationed(self):
        c = ProportionalFlow()
        shares = c.shares({"web": 5.0, "db": 0.5}, 4.0)
        # Proportional fairness: both services lose the same fraction, and
        # the whole capacity is handed out (work conservation).
        assert total(shares) == pytest.approx(4.0)
        assert shares["web"] / 5.0 == pytest.approx(shares["db"] / 0.5)

    def test_exactly_sufficient_capacity_satisfies_all(self):
        c = ProportionalFlow()
        shares = c.shares({"web": 3.0, "db": 1.0}, 4.0)
        assert shares["web"] == pytest.approx(3.0)
        assert shares["db"] == pytest.approx(1.0)

    def test_never_exceeds_capacity_or_demand(self):
        c = ProportionalFlow()
        shares = c.shares({"a": 2.0, "b": 7.0, "c": 0.0}, 5.0)
        assert total(shares) <= 5.0 + 1e-9
        assert shares["a"] <= 2.0 + 1e-9
        assert shares["c"] == 0.0

    def test_zero_capacity(self):
        shares = ProportionalFlow().shares(DEMANDS, 0.0)
        assert total(shares) == 0.0

    def test_reallocation_tax(self):
        c = ProportionalFlow(reallocation_tax=0.1)
        assert c.effective_capacity(10.0, changed=True) == pytest.approx(9.0)
        assert c.effective_capacity(10.0, changed=False) == 10.0

    def test_validation(self):
        with pytest.raises(ValueError):
            ProportionalFlow(reallocation_tax=1.0)
        with pytest.raises(ValueError):
            ProportionalFlow().shares({"a": -1.0}, 1.0)
        with pytest.raises(ValueError):
            ProportionalFlow().shares({"a": 1.0}, -1.0)


class TestPriorityFlow:
    def test_high_priority_served_first(self):
        c = PriorityFlow(priority_order=("db", "web"))
        shares = c.shares({"web": 3.0, "db": 2.0}, 2.5)
        assert shares["db"] == pytest.approx(2.0)
        assert shares["web"] == pytest.approx(0.5)

    def test_leftover_flows_down(self):
        c = PriorityFlow(priority_order=("db", "web"))
        shares = c.shares({"web": 1.0, "db": 0.5}, 4.0)
        assert shares["db"] == pytest.approx(0.5)
        assert shares["web"] == pytest.approx(1.0)

    def test_unlisted_services_share_remainder(self):
        c = PriorityFlow(priority_order=("db",))
        shares = c.shares({"db": 1.0, "x": 2.0, "y": 2.0}, 3.0)
        assert shares["db"] == pytest.approx(1.0)
        assert shares["x"] == pytest.approx(1.0)
        assert shares["y"] == pytest.approx(1.0)

    def test_duplicate_priority_rejected(self):
        with pytest.raises(ValueError):
            PriorityFlow(priority_order=("a", "a"))


class TestIdealFlow:
    def test_matches_proportional_untaxed(self):
        demands = {"web": 3.0, "db": 1.5}
        assert IdealFlow().shares(demands, 2.0) == ProportionalFlow().shares(
            demands, 2.0
        )

    def test_zero_tax(self):
        assert IdealFlow().reallocation_tax == 0.0


class TestPredictiveFlow:
    def test_steady_demand_matches_proportional(self):
        from repro.virtualization.rainbow import PredictiveFlow

        c = PredictiveFlow(alpha=0.5)
        demands = {"web": 3.0, "db": 1.0}
        last = None
        for _ in range(10):
            last = c.shares(demands, 2.0)
        expected = ProportionalFlow().shares(demands, 2.0)
        for name in demands:
            assert last[name] == pytest.approx(expected[name], rel=1e-6)

    def test_lags_sudden_burst(self):
        from repro.virtualization.rainbow import PredictiveFlow

        c = PredictiveFlow(alpha=0.3)
        for _ in range(5):
            c.shares({"web": 1.0, "db": 1.0}, 4.0)
        # Burst: web jumps to 3.0 but the forecast still says ~1.0.
        grants = c.shares({"web": 3.0, "db": 1.0}, 4.0)
        assert grants["web"] < 3.0  # the lag loses work this period

    def test_catches_up_after_burst(self):
        from repro.virtualization.rainbow import PredictiveFlow

        c = PredictiveFlow(alpha=0.5)
        for _ in range(3):
            c.shares({"web": 1.0}, 4.0)
        for _ in range(10):
            grants = c.shares({"web": 3.0}, 4.0)
        assert grants["web"] == pytest.approx(3.0, rel=0.05)

    def test_grants_never_exceed_capacity(self):
        from repro.virtualization.rainbow import PredictiveFlow

        c = PredictiveFlow(alpha=0.2)
        for d in (1.0, 5.0, 0.5, 8.0):
            grants = c.shares({"a": d, "b": d * 2}, 3.0)
            assert sum(grants.values()) <= 3.0 + 1e-9

    def test_validation(self):
        from repro.virtualization.rainbow import PredictiveFlow

        with pytest.raises(ValueError):
            PredictiveFlow(alpha=0.0)
        with pytest.raises(ValueError):
            PredictiveFlow(alpha=0.5, reallocation_tax=1.0)
