"""Unit tests for VM placement (bin-packing consolidation baseline)."""

import pytest

from repro.core.inputs import ResourceKind
from repro.virtualization.placement import (
    VmDemand,
    best_fit_decreasing,
    first_fit_decreasing,
    migration_plan,
)

CPU = ResourceKind.CPU
DISK = ResourceKind.DISK_IO


def vm(name, cpu, disk=None):
    demands = {CPU: cpu}
    if disk is not None:
        demands[DISK] = disk
    return VmDemand(name, demands)


class TestVmDemand:
    def test_size_is_dominant_dimension(self):
        assert vm("a", 0.3, 0.7).size == 0.7

    def test_validation(self):
        with pytest.raises(ValueError):
            VmDemand("", {CPU: 0.5})
        with pytest.raises(ValueError):
            VmDemand("a", {})
        with pytest.raises(ValueError):
            vm("a", -0.1)
        with pytest.raises(ValueError):
            vm("a", 1.5)
        with pytest.raises(TypeError):
            VmDemand("a", {"cpu": 0.5})


@pytest.mark.parametrize("pack", [first_fit_decreasing, best_fit_decreasing],
                         ids=["ffd", "bfd"])
class TestPackingCommon:
    def test_all_vms_placed(self, pack):
        vms = [vm(f"v{i}", 0.3) for i in range(10)]
        plan = pack(vms)
        assert set(plan.assignments) == {f"v{i}" for i in range(10)}

    def test_no_host_overcommitted(self, pack):
        vms = [vm(f"v{i}", 0.4, 0.6) for i in range(7)]
        plan = pack(vms)
        plan.validate()
        for load in plan.host_loads:
            assert load.get(CPU, 0.0) <= 1.0 + 1e-9
            assert load.get(DISK, 0.0) <= 1.0 + 1e-9

    def test_perfect_fit(self, pack):
        # Four half-size VMs fit exactly on two hosts.
        vms = [vm(f"v{i}", 0.5) for i in range(4)]
        assert pack(vms).hosts_used == 2

    def test_single_huge_vms_each_get_a_host(self, pack):
        vms = [vm(f"v{i}", 0.9) for i in range(3)]
        assert pack(vms).hosts_used == 3

    def test_deterministic(self, pack):
        vms = [vm(f"v{i}", 0.2 + 0.05 * (i % 5)) for i in range(12)]
        a = pack(vms)
        b = pack(vms)
        assert a.assignments == b.assignments

    def test_multidimensional_constraint_binds(self, pack):
        # CPU fits 3 per host but disk only 2.
        vms = [vm(f"v{i}", 0.3, 0.5) for i in range(4)]
        assert pack(vms).hosts_used == 2

    def test_duplicate_names_rejected(self, pack):
        with pytest.raises(ValueError):
            pack([vm("a", 0.1), vm("a", 0.2)])


class TestPackingQuality:
    def test_ffd_within_bound_of_optimal(self):
        # Optimal for 0.6/0.4 pairs is pairing them: n hosts for n pairs.
        vms = []
        for i in range(6):
            vms.append(vm(f"big{i}", 0.6))
            vms.append(vm(f"small{i}", 0.4))
        plan = first_fit_decreasing(vms)
        assert plan.hosts_used == 6

    def test_bfd_not_worse_than_ffd_here(self):
        vms = [vm(f"v{i}", d) for i, d in enumerate([0.7, 0.6, 0.4, 0.3, 0.2, 0.2])]
        assert best_fit_decreasing(vms).hosts_used <= first_fit_decreasing(vms).hosts_used

    def test_static_reservations_beat_by_pooling(self):
        # The ablation's core claim in miniature: at scale, packing per-VM
        # peak reservations needs more hosts than Erlang-pooling the mean
        # load.  80 VMs reserving 0.45 CPU each -> 40 hosts; their MEAN
        # load (0.25 each = 20 erlangs) pools into ~30 servers at B=1%.
        # (At small scale the Erlang headroom dominates and packing wins —
        # statistical multiplexing is a scale phenomenon.)
        from repro.queueing.erlang import min_servers

        vms = [vm(f"v{i}", 0.45) for i in range(80)]
        packed = first_fit_decreasing(vms).hosts_used
        pooled = min_servers(80 * 0.25, 0.01)
        assert pooled < packed


class TestMigrationPlan:
    def test_no_moves_for_identical_plans(self):
        vms = [vm(f"v{i}", 0.5) for i in range(4)]
        plan = first_fit_decreasing(vms)
        assert migration_plan(plan, plan) == []

    def test_moves_detected(self):
        vms = [vm("a", 0.5), vm("b", 0.5), vm("c", 0.5), vm("d", 0.5)]
        current = first_fit_decreasing(vms)
        target = first_fit_decreasing(list(reversed(vms)))
        moves = migration_plan(current, target)
        for m in moves:
            assert current.assignments[m.vm] == m.source
            assert target.assignments[m.vm] == m.target

    def test_mismatched_vm_sets_rejected(self):
        a = first_fit_decreasing([vm("a", 0.5)])
        b = first_fit_decreasing([vm("b", 0.5)])
        with pytest.raises(ValueError):
            migration_plan(a, b)


class TestMigrationSequencing:
    def make_demands(self, sizes):
        return {name: vm(name, s) for name, s in sizes.items()}

    def _manual_plan(self, assignments, demands):
        from repro.virtualization.placement import PlacementPlan

        plan = PlacementPlan()
        hosts = max(assignments.values()) + 1
        plan.host_loads = [{} for _ in range(hosts)]
        for name, host in assignments.items():
            plan.assignments[name] = host
            for kind, d in demands[name].demands.items():
                plan.host_loads[host][kind] = (
                    plan.host_loads[host].get(kind, 0.0) + d
                )
        return plan

    def test_trivial_sequence(self):
        from repro.virtualization.placement import plan_migration_sequence

        demands = self.make_demands({"a": 0.4, "b": 0.4})
        cur = self._manual_plan({"a": 0, "b": 1}, demands)
        tgt = self._manual_plan({"a": 1, "b": 1}, demands)
        seq = plan_migration_sequence(cur, tgt, demands)
        assert [(m.vm, m.target) for m in seq] == [("a", 1)]

    def test_cycle_broken_with_bounce(self):
        from repro.virtualization.placement import plan_migration_sequence

        # a and b must swap hosts, each 0.8: neither move fits first, but a
        # third host with room lets the sequencer bounce one of them.
        demands = self.make_demands({"a": 0.8, "b": 0.8})
        cur = self._manual_plan({"a": 0, "b": 1}, demands)
        tgt = self._manual_plan({"a": 1, "b": 0}, demands)
        seq = plan_migration_sequence(cur, tgt, demands, hosts=3)
        # Three moves: bounce, then the two direct moves.
        assert len(seq) == 3
        # Replay ends at the target.
        loc = dict(cur.assignments)
        for m in seq:
            assert loc[m.vm] == m.source
            loc[m.vm] = m.target
        assert loc == tgt.assignments

    def test_infeasible_cycle_raises(self):
        from repro.virtualization.placement import plan_migration_sequence

        demands = self.make_demands({"a": 0.8, "b": 0.8})
        cur = self._manual_plan({"a": 0, "b": 1}, demands)
        tgt = self._manual_plan({"a": 1, "b": 0}, demands)
        with pytest.raises(ValueError):
            plan_migration_sequence(cur, tgt, demands, hosts=2)

    def test_no_overcommit_during_replay(self):
        from repro.virtualization.placement import (
            first_fit_decreasing,
            plan_migration_sequence,
        )

        demands = {f"v{i}": vm(f"v{i}", 0.3 + 0.05 * (i % 4)) for i in range(10)}
        vms = list(demands.values())
        cur = first_fit_decreasing(vms)
        tgt = first_fit_decreasing(list(reversed(vms)))
        hosts = max(cur.hosts_used, tgt.hosts_used) + 1
        seq = plan_migration_sequence(cur, tgt, demands, hosts=hosts)
        # Replay, asserting capacity at every step.
        loads = [dict(cur.host_loads[i]) if i < cur.hosts_used else {}
                 for i in range(hosts)]
        loc = dict(cur.assignments)
        for m in seq:
            d = demands[m.vm]
            for kind, val in d.demands.items():
                loads[m.source][kind] -= val
                loads[m.target][kind] = loads[m.target].get(kind, 0.0) + val
                assert loads[m.target][kind] <= 1.0 + 1e-9
            loc[m.vm] = m.target
        assert loc == tgt.assignments

    def test_missing_demand_rejected(self):
        from repro.virtualization.placement import plan_migration_sequence

        demands = self.make_demands({"a": 0.5})
        cur = self._manual_plan({"a": 0, "b": 1}, self.make_demands({"a": 0.5, "b": 0.5}))
        tgt = self._manual_plan({"a": 1, "b": 0}, self.make_demands({"a": 0.5, "b": 0.5}))
        with pytest.raises(ValueError):
            plan_migration_sequence(cur, tgt, demands)


class TestIncrementalBfd:
    """The ``into``/``allowed_hosts`` extensions behind re-consolidation."""

    def base_plan(self):
        return best_fit_decreasing([vm("a", 0.5), vm("b", 0.5), vm("c", 0.4)])

    def test_into_starts_from_a_copy(self):
        base = self.base_plan()
        before = dict(base.assignments)
        grown = best_fit_decreasing([vm("d", 0.3)], into=base)
        assert base.assignments == before  # the base plan is untouched
        assert set(grown.assignments) == {"a", "b", "c", "d"}
        for name in before:
            assert grown.assignments[name] == before[name]
        grown.validate()

    def test_into_rejects_duplicate_vms(self):
        with pytest.raises(ValueError, match="already placed"):
            best_fit_decreasing([vm("a", 0.2)], into=self.base_plan())

    def test_allowed_hosts_restricts_candidates(self):
        base = self.base_plan()
        survivors = [h for h in range(base.hosts_used) if h != 0]
        placed = best_fit_decreasing(
            [vm("d", 0.3)], into=base, allowed_hosts=survivors
        )
        assert placed.assignments["d"] in survivors

    def test_allowed_hosts_never_opens_new_hosts(self):
        base = best_fit_decreasing([vm("a", 0.9), vm("b", 0.9)])
        with pytest.raises(ValueError, match="no allowed host has room"):
            best_fit_decreasing(
                [vm("c", 0.5)], into=base,
                allowed_hosts=list(range(base.hosts_used)),
            )

    def test_allowed_hosts_must_exist(self):
        base = self.base_plan()
        with pytest.raises(ValueError, match="does not exist"):
            best_fit_decreasing(
                [vm("d", 0.1)], into=base, allowed_hosts=[base.hosts_used + 3]
            )

    def test_classic_behaviour_unchanged_without_keywords(self):
        vms = [vm("a", 0.5), vm("b", 0.5), vm("c", 0.4)]
        assert (
            best_fit_decreasing(vms).assignments
            == best_fit_decreasing(vms, into=None, allowed_hosts=None).assignments
        )


class TestPlanCopyAndRemove:
    def test_copy_is_independent(self):
        plan = best_fit_decreasing([vm("a", 0.5), vm("b", 0.5)])
        dup = plan.copy()
        dup.remove(vm("a", 0.5))
        assert "a" in plan.assignments
        assert "a" not in dup.assignments
        plan.validate()

    def test_remove_releases_demand_and_reports_host(self):
        a = vm("a", 0.6, 0.2)
        plan = best_fit_decreasing([a, vm("b", 0.5)])
        host = plan.remove(a)
        assert plan.host_loads[host].get(CPU, 0.0) == pytest.approx(
            sum(
                0.5 for n, h in plan.assignments.items() if h == host
            )
        )
        assert "a" not in plan.assignments
        # The freed room is reusable.
        again = best_fit_decreasing([vm("a2", 0.6, 0.2)], into=plan)
        again.validate()

    def test_remove_clamps_float_drift(self):
        a = vm("a", 0.3)
        plan = best_fit_decreasing([a])
        for _ in range(1000):
            host = plan.remove(a)
            best = best_fit_decreasing([a], into=plan)
            plan = best
        assert plan.host_loads[plan.assignments["a"]][CPU] >= 0.3 - 1e-9
        plan.validate()

    def test_remove_missing_vm_raises(self):
        plan = best_fit_decreasing([vm("a", 0.5)])
        with pytest.raises(KeyError):
            plan.remove(vm("ghost", 0.5))
