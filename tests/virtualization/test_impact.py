"""Unit tests for the impact-factor models and their fitting."""

import numpy as np
import pytest

from repro.virtualization.impact import (
    DB_CPU_IMPACT,
    DB_CPU_IMPACT_LITERAL,
    WEB_CPU_IMPACT,
    WEB_DISK_IO_IMPACT,
    ConstantImpactModel,
    LinearImpactModel,
    SaturatingImpactModel,
    fit_linear_impact,
    fit_saturating_impact,
)


class TestLinearModel:
    def test_published_web_io_values(self):
        # a(v) = -0.012 v + 1.082 (the line literally exceeds 1 at small v).
        assert WEB_DISK_IO_IMPACT.impact(9) == pytest.approx(1.082 - 0.108)
        assert WEB_DISK_IO_IMPACT.impact(1) == pytest.approx(1.07)

    def test_published_web_cpu_values(self):
        assert WEB_CPU_IMPACT.impact(1) == pytest.approx(0.658 - 0.039)
        assert WEB_CPU_IMPACT.impact(9) == pytest.approx(0.658 - 0.351)

    def test_clipped_to_positive(self):
        m = LinearImpactModel(slope=-0.5, intercept=1.0)
        assert m.impact(100) > 0.0

    def test_cap_respected(self):
        m = LinearImpactModel(slope=0.1, intercept=1.0, cap=1.0)
        assert m.impact(50) == 1.0

    def test_inverse(self):
        m = LinearImpactModel(slope=-0.04, intercept=1.0)
        assert m.vms_at_impact(0.6) == pytest.approx(10.0)

    def test_flat_line_inverse_raises(self):
        with pytest.raises(ZeroDivisionError):
            LinearImpactModel(slope=0.0, intercept=0.5).vms_at_impact(0.5)

    def test_rejects_negative_vms(self):
        with pytest.raises(ValueError):
            WEB_CPU_IMPACT.impact(-1)

    def test_vectorised(self):
        vals = WEB_CPU_IMPACT.impacts([1, 2, 3])
        assert vals.shape == (3,)
        assert (np.diff(vals) < 0).all()


class TestSaturatingModel:
    def test_anchored_at_one_for_single_vm(self):
        # Our reconstruction pins a(1) = 1.0 (native ~ 1 VM in Fig. 8).
        assert DB_CPU_IMPACT.impact(1) == pytest.approx(1.0)

    def test_ceiling_approached(self):
        assert DB_CPU_IMPACT.impact(100) == pytest.approx(1.85, rel=1e-3)

    def test_multi_vm_speedup(self):
        # The software-bottleneck story: several VMs beat one.
        assert DB_CPU_IMPACT.impact(4) > 1.5
        assert DB_CPU_IMPACT.impact(2) > 1.4

    def test_monotone_increasing(self):
        vals = [DB_CPU_IMPACT.impact(v) for v in range(1, 10)]
        assert all(a < b for a, b in zip(vals, vals[1:]))

    def test_literal_variant_differs(self):
        assert DB_CPU_IMPACT_LITERAL.impact(1) > DB_CPU_IMPACT.impact(1)

    def test_zero_vms_is_tiny(self):
        assert DB_CPU_IMPACT.impact(0) < 1e-3

    def test_validation(self):
        with pytest.raises(ValueError):
            SaturatingImpactModel(ceiling=0.0, half_v2=1.0)
        with pytest.raises(ValueError):
            SaturatingImpactModel(ceiling=1.0, half_v2=0.0)


class TestConstantModel:
    def test_constant(self):
        m = ConstantImpactModel(0.7)
        assert m.impact(1) == m.impact(9) == 0.7

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            ConstantImpactModel(0.0)


class TestFitting:
    def test_linear_fit_recovers_exact_line(self):
        v = np.arange(1.0, 10.0)
        a = -0.012 * v + 1.082
        fit = fit_linear_impact(v, a, cap=2.0)
        assert fit.slope == pytest.approx(-0.012, abs=1e-9)
        assert fit.intercept == pytest.approx(1.082, abs=1e-9)

    def test_linear_fit_robust_to_noise(self, rng):
        v = np.arange(1.0, 10.0)
        a = -0.039 * v + 0.658 + 0.005 * rng.standard_normal(v.size)
        fit = fit_linear_impact(v, a)
        assert fit.slope == pytest.approx(-0.039, abs=0.01)
        assert fit.intercept == pytest.approx(0.658, abs=0.03)

    def test_saturating_fit_recovers_parameters(self):
        v = np.arange(1.0, 10.0)
        a = np.array([DB_CPU_IMPACT.impact(x) for x in v])
        fit = fit_saturating_impact(v, a)
        assert fit.ceiling == pytest.approx(1.85, rel=1e-3)
        assert fit.half_v2 == pytest.approx(0.85, rel=1e-2)

    def test_fit_rejects_bad_input(self):
        with pytest.raises(ValueError):
            fit_linear_impact(np.array([1.0]), np.array([1.0]))
        with pytest.raises(ValueError):
            fit_saturating_impact(np.array([0.0, 1.0]), np.array([0.1, 1.0]))
