"""Property-based tests for VM placement."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.inputs import ResourceKind
from repro.virtualization.placement import (
    VmDemand,
    best_fit_decreasing,
    first_fit_decreasing,
)

CPU = ResourceKind.CPU
DISK = ResourceKind.DISK_IO

demands = st.floats(min_value=0.01, max_value=1.0, allow_nan=False)


@st.composite
def vm_lists(draw):
    n = draw(st.integers(min_value=1, max_value=25))
    vms = []
    for i in range(n):
        d = {CPU: draw(demands)}
        if draw(st.booleans()):
            d[DISK] = draw(demands)
        vms.append(VmDemand(f"v{i}", d))
    return vms


@settings(max_examples=60, deadline=None)
@given(vm_lists())
def test_every_vm_placed_no_overcommit(vms):
    for pack in (first_fit_decreasing, best_fit_decreasing):
        plan = pack(vms)
        assert set(plan.assignments) == {vm.name for vm in vms}
        plan.validate()


@settings(max_examples=60, deadline=None)
@given(vm_lists())
def test_hosts_at_least_volume_lower_bound(vms):
    # No packing can beat the per-dimension volume bound.
    for pack in (first_fit_decreasing, best_fit_decreasing):
        plan = pack(vms)
        for kind in (CPU, DISK):
            total = sum(vm.demands.get(kind, 0.0) for vm in vms)
            assert plan.hosts_used >= math.ceil(total - 1e-9)


@settings(max_examples=60, deadline=None)
@given(vm_lists())
def test_ffd_within_factor_two_of_volume(vms):
    # FFD on the dominant dimension uses < 2x the dominant-volume bound + 1
    # (each pair of hosts is > 1.0 full in the dominant dimension).
    plan = first_fit_decreasing(vms)
    dominant_volume = sum(vm.size for vm in vms)
    assert plan.hosts_used <= 2.0 * dominant_volume + 1.0


@settings(max_examples=60, deadline=None)
@given(vm_lists())
def test_packing_deterministic(vms):
    a = first_fit_decreasing(vms)
    b = first_fit_decreasing(vms)
    assert a.assignments == b.assignments
