"""Unit tests for the simulated hypervisor and VM abstractions."""

import pytest

from repro.virtualization.hypervisor import (
    FLOATING_EFFICIENCY,
    HostSpec,
    Hypervisor,
)
from repro.virtualization.vm import VcpuPlacement, VirtualMachine


def vm(name="vm", service="svc", vcpus=1, pinned=(), memory=1.0, weight=1.0):
    return VirtualMachine(
        name, service, VcpuPlacement(vcpus, tuple(pinned)), memory, weight
    )


class TestVcpuPlacement:
    def test_floating_default(self):
        p = VcpuPlacement(2)
        assert not p.pinned

    def test_pinning_must_cover_all_vcpus(self):
        with pytest.raises(ValueError):
            VcpuPlacement(2, pinned_cores=(0,))

    def test_pinned_cores_distinct(self):
        with pytest.raises(ValueError):
            VcpuPlacement(2, pinned_cores=(3, 3))

    def test_rejects_negative_core(self):
        with pytest.raises(ValueError):
            VcpuPlacement(1, pinned_cores=(-1,))

    def test_rejects_zero_vcpus(self):
        with pytest.raises(ValueError):
            VcpuPlacement(0)


class TestVirtualMachine:
    def test_validation(self):
        with pytest.raises(ValueError):
            vm(name="")
        with pytest.raises(ValueError):
            vm(service="")
        with pytest.raises(ValueError):
            vm(memory=0.0)
        with pytest.raises(ValueError):
            vm(weight=0.0)


class TestHostSpec:
    def test_paper_testbed_defaults(self):
        spec = HostSpec()
        assert spec.cores == 8
        assert spec.guest_cores == 6
        assert spec.guest_memory_gb == pytest.approx(7.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            HostSpec(cores=0)
        with pytest.raises(ValueError):
            HostSpec(cores=4, dom0_cores=4)
        with pytest.raises(ValueError):
            HostSpec(memory_gb=1.0, dom0_memory_gb=2.0)


class TestDomainLifecycle:
    def test_create_and_destroy(self):
        hv = Hypervisor()
        hv.create_domain(vm("a"))
        assert len(hv.domains) == 1
        hv.destroy_domain("a")
        assert len(hv.domains) == 0

    def test_duplicate_name_rejected(self):
        hv = Hypervisor()
        hv.create_domain(vm("a"))
        with pytest.raises(ValueError):
            hv.create_domain(vm("a"))

    def test_memory_overcommit_rejected(self):
        hv = Hypervisor(HostSpec(memory_gb=4.0, dom0_memory_gb=1.0))
        hv.create_domain(vm("a", memory=2.0))
        with pytest.raises(ValueError):
            hv.create_domain(vm("b", memory=2.0))

    def test_pin_beyond_cores_rejected(self):
        hv = Hypervisor(HostSpec(cores=4, dom0_cores=1))
        with pytest.raises(ValueError):
            hv.create_domain(vm("a", vcpus=1, pinned=(7,)))

    def test_pin_dom0_core_rejected(self):
        hv = Hypervisor(HostSpec(cores=4, dom0_cores=2))
        # Dom0 reserves the last two cores (2, 3).
        with pytest.raises(ValueError):
            hv.create_domain(vm("a", vcpus=1, pinned=(3,)))

    def test_double_pin_rejected(self):
        hv = Hypervisor()
        hv.create_domain(vm("a", vcpus=1, pinned=(0,)))
        with pytest.raises(ValueError):
            hv.create_domain(vm("b", vcpus=1, pinned=(0,)))

    def test_destroy_unknown_raises(self):
        with pytest.raises(KeyError):
            Hypervisor().destroy_domain("ghost")


class TestScheduling:
    def test_paper_configuration_grants(self):
        # 6-vCPU pinned DB VM + 1-vCPU floating Web VM on an 8-core host.
        hv = Hypervisor()
        hv.create_domain(vm("db", vcpus=6, pinned=(0, 1, 2, 3, 4, 5)))
        hv.create_domain(vm("web", vcpus=1))
        alloc = hv.allocate()
        # 7 vCPUs want 6 guest cores: both get close to their demand with
        # fair sharing; grants must exhaust the guest cores.
        total = alloc["db"].cores_granted + alloc["web"].cores_granted
        assert total == pytest.approx(6.0)
        assert alloc["db"].cores_granted >= 5.0
        assert alloc["web"].cores_granted > 0.0

    def test_work_conserving_redistribution(self):
        hv = Hypervisor()
        hv.create_domain(vm("a", vcpus=6))
        hv.create_domain(vm("b", vcpus=6))
        # b wants almost nothing; a should scoop up the slack.
        alloc = hv.allocate({"a": 6.0, "b": 0.5})
        assert alloc["b"].cores_granted == pytest.approx(0.5)
        assert alloc["a"].cores_granted == pytest.approx(5.5)

    def test_weight_proportional_split(self):
        hv = Hypervisor()
        hv.create_domain(vm("a", vcpus=6, weight=2.0))
        hv.create_domain(vm("b", vcpus=6, weight=1.0))
        alloc = hv.allocate()
        assert alloc["a"].cores_granted == pytest.approx(4.0)
        assert alloc["b"].cores_granted == pytest.approx(2.0)

    def test_pinned_efficiency_beats_floating_under_contention(self):
        hv = Hypervisor()
        hv.create_domain(vm("p", vcpus=3, pinned=(0, 1, 2)))
        hv.create_domain(vm("f", vcpus=3))
        alloc = hv.allocate()
        assert alloc["p"].efficiency > alloc["f"].efficiency

    def test_floating_penalty_scales_with_contention(self):
        light = Hypervisor()
        light.create_domain(vm("a", vcpus=1))
        heavy = Hypervisor()
        for i in range(6):
            heavy.create_domain(vm(f"vm{i}", vcpus=2))
        a_light = light.allocate()["a"].efficiency
        a_heavy = heavy.allocate()["vm0"].efficiency
        assert a_heavy < a_light

    def test_grant_capped_by_vcpus(self):
        hv = Hypervisor()
        hv.create_domain(vm("a", vcpus=2))
        alloc = hv.allocate({"a": 100.0})
        assert alloc["a"].cores_granted == pytest.approx(2.0)

    def test_io_efficiency_decays_with_domains(self):
        few = Hypervisor()
        few.create_domain(vm("a", vcpus=1))
        many = Hypervisor()
        for i in range(6):
            many.create_domain(vm(f"d{i}", vcpus=1, memory=1.0))
        assert many._io_efficiency() < few._io_efficiency()

    def test_unknown_demand_rejected(self):
        hv = Hypervisor()
        hv.create_domain(vm("a"))
        with pytest.raises(KeyError):
            hv.allocate({"ghost": 1.0})

    def test_negative_demand_rejected(self):
        hv = Hypervisor()
        hv.create_domain(vm("a"))
        with pytest.raises(ValueError):
            hv.allocate({"a": -1.0})

    def test_cpu_capacity_fraction(self):
        hv = Hypervisor()
        hv.create_domain(vm("a", vcpus=6))
        frac = hv.cpu_capacity_fraction("a")
        assert 0.0 < frac <= 6.0 / 8.0
        with pytest.raises(KeyError):
            hv.cpu_capacity_fraction("ghost")


class TestCreditCaps:
    def test_cap_limits_even_on_idle_host(self):
        hv = Hypervisor()
        capped = VirtualMachine(
            "capped", "svc", VcpuPlacement(4), memory_gb=1.0, cap=1.5
        )
        hv.create_domain(capped)
        alloc = hv.allocate()
        # Host has 6 free guest cores, but the cap binds at 1.5.
        assert alloc["capped"].cores_granted == pytest.approx(1.5)

    def test_capped_slack_flows_to_others(self):
        hv = Hypervisor()
        hv.create_domain(
            VirtualMachine("capped", "a", VcpuPlacement(6), memory_gb=1.0, cap=1.0)
        )
        hv.create_domain(vm("hungry", vcpus=6))
        alloc = hv.allocate()
        assert alloc["capped"].cores_granted == pytest.approx(1.0)
        assert alloc["hungry"].cores_granted == pytest.approx(5.0)

    def test_cap_validation(self):
        with pytest.raises(ValueError):
            VirtualMachine("x", "svc", VcpuPlacement(1), cap=0.0)

    def test_uncapped_default(self):
        assert vm("a").cap is None
