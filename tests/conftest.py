"""Shared fixtures for the test suite."""

import numpy as np
import pytest


def pytest_addoption(parser):
    parser.addoption(
        "--update-golden",
        action="store_true",
        default=False,
        help="regenerate tests/golden/*.json from the current code instead "
        "of diffing against it (review the diff before committing)",
    )


@pytest.fixture
def update_golden(request):
    """Whether this run should rewrite golden snapshots (--update-golden)."""
    return request.config.getoption("--update-golden")


@pytest.fixture(autouse=True)
def _fresh_erlang_cache():
    """Start every test with a cold shared Erlang cache.

    The cache is process-global, so without this a test's hit/miss
    behaviour (and anything downstream, like which instrumented solvers
    actually run) would depend on suite ordering.
    """
    from repro.parallel.cache import shared_cache

    shared_cache().clear()
    yield


@pytest.fixture
def rng():
    """Deterministic RNG; every test using randomness gets the same seed."""
    return np.random.default_rng(20090101)


@pytest.fixture
def rng_factory():
    """Factory for independent deterministic streams within one test."""

    def make(seed: int = 0):
        return np.random.default_rng(900 + seed)

    return make
