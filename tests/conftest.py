"""Shared fixtures for the test suite."""

import numpy as np
import pytest


@pytest.fixture
def rng():
    """Deterministic RNG; every test using randomness gets the same seed."""
    return np.random.default_rng(20090101)


@pytest.fixture
def rng_factory():
    """Factory for independent deterministic streams within one test."""

    def make(seed: int = 0):
        return np.random.default_rng(900 + seed)

    return make
