"""Setuptools shim.

The execution environment has no network access and no ``wheel`` package,
so PEP-517 editable installs (which build a wheel) cannot run; keeping a
``setup.py`` lets ``pip install -e .`` fall back to the legacy
``setup.py develop`` path.  All metadata lives in ``setup.cfg``.
"""

from setuptools import setup

setup()
